#!/usr/bin/env python3
"""Comm-protocol and concurrency-contract static analyzer for the LTFB repo.

Sibling of ltfb_lint.py, but where the lint pass checks shallow per-line
invariants, this tool builds a small semantic model of the tree — comm call
sites, tag constants, lock acquisitions, capability annotations — and checks
cross-file protocol properties that neither the compiler nor a regex can see:

  tag-pairing    Every message-tag family has both a send-side and a
                 receive-side endpoint somewhere in the tree.  A tag that is
                 only ever sent (or only ever received) is a protocol hole:
                 the message either rots in a mailbox forever or the receiver
                 deadlocks waiting for traffic nobody produces.  Endpoints
                 are resolved through the backend API as well: a
                 Backend::deliver(src, dst, Envelope{...}) call counts as a
                 send endpoint, with the tag read out of the envelope
                 aggregate (comm/backend.hpp).

  tag-reuse      No tag base value is shared by two different subsystems
                 (directories under src/).  The in-process Communicator keys
                 mailbox matching on (peer, tag); two subsystems reusing one
                 value can steal each other's messages.

  comm-deadline  Dataflow form of the old lint rule: every blocking
                 recv/sendrecv/wait/shrink in src/core and src/datastore
                 must reach a deadline.  Unlike the regex rule this follows
                 identifiers to their declarations, so `auto d =
                 cfg.exchange_timeout; comm.recv(src, tag, d);` passes while
                 a naked recv fails.  An explicit Deadline::never() does NOT
                 satisfy the rule — spelling out "block forever" in the
                 fault-tolerant layers is exactly the hang being hunted.

  lock-order     Builds a lock digraph from MutexLock scope nesting,
                 LTFB_REQUIRES/LTFB_ACQUIRE annotations, and the call graph
                 (a call made while holding A inherits every lock the callee
                 may take).  Any cycle is a potential deadlock.

  rank-binding   Thread-boundary rule absorbed from ltfb_lint.py, upgraded
                 from a file manifest to call-site detection: every
                 std::thread / thread-vector emplace_back / pool submit that
                 launches a lambda must bind telemetry rank identity
                 (bind_rank / RankBinding / set_thread_name) in the lambda or
                 in a function the lambda directly calls.

  guarded-field  Lightweight, compiler-independent echo of Clang's
                 -Wthread-safety for the GCC-only path: a member annotated
                 LTFB_GUARDED_BY(mu) may only be accessed bare (no object
                 prefix) inside a method of its class while a MutexLock on
                 `mu` is in scope, the method carries LTFB_REQUIRES(mu), or
                 the method is a constructor/destructor.

Known limitations (deliberate — this is a lint, not a compiler): lambda
bodies are excluded from the lock-order scope analysis because they usually
execute outside the enclosing critical section; the call graph is keyed by
simple function name with a blocklist for std-container collisions; and the
guarded-field rule only checks bare member accesses (prefixed accesses are
Clang TSA's job under LTFB_THREAD_SAFETY=ON).

Usage:
  python3 tools/ltfb_static.py [--root DIR] [--json]
  python3 tools/ltfb_static.py --fixtures tests/test_static_fixtures
  python3 tools/ltfb_static.py --validate

Exit status: number of findings (capped at 125), 126 if no sources found.
--fixtures / --validate exit 0 on success, 1 on failure.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Text utilities
# ---------------------------------------------------------------------------

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "throw", "else", "do", "case", "static_assert", "alignof",
    "decltype", "defined", "assert", "co_await", "co_return", "co_yield",
}

# Simple-name call-graph entries that collide with std container/sync method
# names; resolving them by name alone would fabricate lock-order edges.
CALL_NAME_BLOCKLIST = {
    "wait", "wait_for", "wait_until", "notify_one", "notify_all", "native",
    "lock", "unlock", "try_lock", "size", "empty", "get", "count", "begin",
    "end", "clear", "push_back", "pop_front", "pop_back", "emplace_back",
    "reserve", "resize", "insert", "erase", "find", "at", "front", "back",
    "str", "data", "c_str", "reset", "swap", "what", "load", "store", "test",
    "join", "detach", "substr", "append", "emplace", "contains", "value",
}


def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving offsets/newlines."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' and re.search(r"(?:u8|[uUL])?R$", text[max(0, i - 3):i]):
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'"([^(\s"\\]*)\(', text[i:])
            if m is None:
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = (end + len(closer)) if end >= 0 else n
            for j in range(i, end):
                if text[j] != "\n":
                    out[j] = " "
            i = end
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_paren(text: str, open_ofs: int) -> int:
    """Offset just past the ')' matching the '(' at open_ofs; -1 if unclosed."""
    depth = 0
    for i in range(open_ofs, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(text: str, open_ofs: int) -> int:
    """Offset of the '}' matching the '{' at open_ofs; len(text) if unclosed."""
    depth = 0
    for i in range(open_ofs, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def split_args(argtext: str) -> list[str]:
    """Split an argument list on top-level commas (paren/bracket/brace aware)."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(argtext):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(argtext[start:i].strip())
            start = i + 1
    tail = argtext[start:].strip()
    if tail or parts:
        parts.append(tail)
    return parts


def normalize_expr(expr: str) -> str:
    return re.sub(r"\s+", "", expr)


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Per-file parsing
# ---------------------------------------------------------------------------

CLASS_HEAD = re.compile(
    r"\b(class|struct)\s+(?:LTFB_\w+\s*(?:\([^)]*\))?\s*)?"
    r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)\s*(?:final\s*)?"
    r"(?::\s*(?!:)[^{;]*)?\{"
)
FUNC_NAME = re.compile(r"[A-Za-z_~][\w]*(?:\s*::\s*~?[A-Za-z_][\w]*)*\s*\(")
MUTEX_DECL = re.compile(r"\b(?:util\s*::\s*)?Mutex\s+(\w+)\s*;")
GUARDED_DECL = re.compile(r"(\w+)\s+LTFB_GUARDED_BY\s*\(")
ACQ_RE = re.compile(r"\b(?:util\s*::\s*)?MutexLock\s+\w+\s*\(")
ANNOT_RE = re.compile(r"\bLTFB_(REQUIRES|ACQUIRE)\s*\(")
LAMBDA_HEAD = re.compile(r"\[")
CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
ASSIGN_RE = re.compile(
    r"((?:\w+\s*(?:\.|->)\s*)*\w+)\s*(?<![=!<>+\-*/|&%^])=(?!=)\s*([^;{}]+);"
)
TAG_CONST_RE = re.compile(r"\b(k\w*Tag\w*)\b\s*=\s*([^;,})]+)")


class FunctionDef:
    def __init__(self, name, cls, head_ofs, body_start, body_end, requires, acquires):
        self.name = name          # simple name (no qualifier)
        self.cls = cls            # enclosing/qualifying class name or None
        self.head_ofs = head_ofs
        self.body_start = body_start  # offset of '{' (or -1 for declarations)
        self.body_end = body_end
        self.requires = requires  # raw capability expressions
        self.acquires = acquires


class FileModel:
    def __init__(self, path: Path, rel: str, subsystem: str):
        self.path = path
        self.rel = rel
        self.subsystem = subsystem
        self.raw = path.read_text()
        self.text = strip_comments_and_strings(self.raw)
        self.classes = []          # (name, body_start, body_end)
        self.functions = []        # FunctionDef (definitions only)
        self.declared_requires = {}  # (cls, name) -> [expr]
        self.mutex_members = []    # (cls_or_None, member_name)
        self.guarded = []          # (cls_or_None, member, guard_expr)
        self.assignments = {}      # normalized LHS -> (RHS, offset)
        self.tag_consts = []       # (name, value_or_None, offset)
        self._parse()

    # -- class extents ------------------------------------------------------
    def _parse_classes(self):
        for m in CLASS_HEAD.finditer(self.text):
            pre = self.text[max(0, m.start() - 6):m.start()]
            if re.search(r"\benum\s*$", pre):
                continue
            body_open = m.end() - 1
            name = m.group(2).split("::")[-1].strip()
            self.classes.append((name, body_open, match_brace(self.text, body_open)))

    def enclosing_class(self, ofs: int):
        best = None
        for name, start, end in self.classes:
            if start < ofs <= end and (best is None or start > best[1]):
                best = (name, start)
        return best[0] if best else None

    # -- function definitions / declarations --------------------------------
    def _parse_functions(self):
        text = self.text
        pos = 0
        while True:
            m = FUNC_NAME.search(text, pos)
            if not m:
                break
            name_tok = m.group(0)[:-1].strip()
            open_paren = m.end() - 1
            prev = text[:m.start()].rstrip()[-2:] if m.start() else ""
            simple = name_tok.split("::")[-1].strip()
            if (
                simple in CPP_KEYWORDS
                or simple.isupper()
                or prev.endswith(".")
                or prev.endswith("->")
            ):
                pos = m.end()
                continue
            after_args = match_paren(text, open_paren)
            if after_args < 0:
                pos = m.end()
                continue
            # Scan the header tail for `{` (definition) or `;` (declaration),
            # skipping parenthesized groups (LTFB_REQUIRES(...), init lists).
            i, body_start, is_decl = after_args, -1, False
            while i < len(text):
                c = text[i]
                if c == "(":
                    j = match_paren(text, i)
                    if j < 0:
                        break
                    i = j
                    continue
                if c == "{":
                    body_start = i
                    break
                if c == ";":
                    is_decl = True
                    break
                if c in ")]}," or (c == "=" and not text.startswith("= 0", i)
                                   and not re.match(r"=\s*(default|delete)", text[i:])):
                    break
                i += 1
            else:
                break
            if body_start < 0 and not is_decl:
                pos = m.end()
                continue
            tail = text[after_args:(body_start if body_start >= 0 else i)]
            requires, acquires = [], []
            for am in ANNOT_RE.finditer(tail):
                close = match_paren(tail, am.end() - 1)
                if close < 0:
                    continue
                expr = tail[am.end():close - 1].strip()
                if expr:
                    (requires if am.group(1) == "REQUIRES" else acquires).append(expr)
            qual = name_tok.rsplit("::", 1)[0].split("::")[-1].strip() \
                if "::" in name_tok else None
            cls = qual or self.enclosing_class(m.start())
            if body_start >= 0:
                body_end = match_brace(text, body_start)
                self.functions.append(FunctionDef(
                    simple.lstrip("~"), cls, m.start(), body_start, body_end,
                    requires, acquires))
                if simple.startswith("~"):
                    self.functions[-1].name = "~" + self.functions[-1].name
                pos = body_end + 1
            else:
                if requires or acquires:
                    key = (cls, simple)
                    self.declared_requires.setdefault(key, [])
                    self.declared_requires[key].extend(requires)
                pos = i + 1

    # -- members, assignments, tag constants ---------------------------------
    def _parse_members(self):
        for m in MUTEX_DECL.finditer(self.text):
            self.mutex_members.append((self.enclosing_class(m.start()), m.group(1)))
        for m in GUARDED_DECL.finditer(self.text):
            close = match_paren(self.text, m.end() - 1)
            if close < 0:
                continue
            guard = self.text[m.end():close - 1].strip()
            self.guarded.append((self.enclosing_class(m.start()), m.group(1), guard))
        for m in ASSIGN_RE.finditer(self.text):
            lhs = normalize_expr(m.group(1))
            self.assignments.setdefault(lhs, (m.group(2).strip(), m.start()))
        for m in TAG_CONST_RE.finditer(self.text):
            rhs = m.group(2).strip()
            value = None
            if re.fullmatch(r"[\d\s+\-*()<>xXa-fA-F]+", rhs):
                try:
                    value = eval(rhs, {"__builtins__": {}})  # noqa: S307
                except Exception:
                    value = None
            self.tag_consts.append((m.group(1), value, m.start()))

    def _parse(self):
        self._parse_classes()
        self._parse_functions()
        self._parse_members()

    # -- lambdas -------------------------------------------------------------
    def lambda_extents(self, start: int, end: int):
        """(body_open, body_close) for each lambda literal in [start, end)."""
        text, out, i = self.text, [], start
        while i < end:
            if text[i] != "[":
                i += 1
                continue
            prev = text[:i].rstrip()[-2:] if i else ""
            if prev and (prev[-1].isalnum() or prev[-1] in "_)]"):
                i += 1  # subscript, not a lambda
                continue
            depth, j = 0, i
            while j < end:
                if text[j] == "[":
                    depth += 1
                elif text[j] == "]":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if j >= end:
                break
            k = j + 1
            while k < end and text[k].isspace():
                k += 1
            if k < end and text[k] == "(":
                k = match_paren(text, k)
                if k < 0:
                    i = j + 1
                    continue
            while k < end:
                mm = re.match(r"\s*(mutable|noexcept|constexpr)\b", text[k:end])
                if mm:
                    k += mm.end()
                    continue
                mm = re.match(r"\s*->\s*[\w:<>,&*\s]+?(?=\{)", text[k:end])
                if mm:
                    k += mm.end()
                break
            while k < end and text[k].isspace():
                k += 1
            if k < end and text[k] == "{":
                close = match_brace(self.text, k)
                out.append((k, close))
                i = j + 1
            else:
                i = j + 1
        return out


# ---------------------------------------------------------------------------
# Tree model
# ---------------------------------------------------------------------------

class TreeModel:
    def __init__(self, files: list[FileModel], fixture_mode: bool):
        self.files = files
        self.fixture_mode = fixture_mode
        # (member name) -> set of (class, file rel) declaring a Mutex with it
        self.mutex_index = {}
        self.guard_index = {}   # class -> [(member, guard_expr, file)]
        self.functions = {}     # simple name -> [(FileModel, FunctionDef)]
        self.requires_decls = {}  # (cls, name) -> [expr]
        self.thread_vectors = set()
        for fm in files:
            for cls, member in fm.mutex_members:
                self.mutex_index.setdefault(member, set()).add((cls, fm.rel))
            for cls, member, guard in fm.guarded:
                self.guard_index.setdefault(cls, []).append((member, guard, fm))
            for fn in fm.functions:
                self.functions.setdefault(fn.name, []).append((fm, fn))
            for key, exprs in fm.declared_requires.items():
                self.requires_decls.setdefault(key, []).extend(exprs)
            for m in re.finditer(r"std\s*::\s*vector\s*<\s*std\s*::\s*thread\s*>\s+(\w+)",
                                 fm.text):
                self.thread_vectors.add(m.group(1))

    def fn_requires(self, fm: FileModel, fn: FunctionDef) -> list[str]:
        exprs = list(fn.requires)
        exprs.extend(self.requires_decls.get((fn.cls, fn.name), []))
        return exprs

    # -- lock identity -------------------------------------------------------
    def resolve_lock(self, expr: str, enclosing_cls, fm: FileModel) -> str:
        member = re.split(r"\.|->", normalize_expr(expr))[-1]
        member = re.sub(r"\W", "", member) or normalize_expr(expr)
        candidates = self.mutex_index.get(member, set())
        if "." not in expr and "->" not in expr:
            for cls, _rel in candidates:
                if cls == enclosing_cls and cls is not None:
                    return f"{cls}::{member}"
        same_file = {(cls, rel) for cls, rel in candidates if rel == fm.rel}
        pool = same_file or candidates
        classes = {cls for cls, _rel in pool}
        if len(classes) == 1:
            cls = next(iter(classes))
            return f"{cls}::{member}" if cls else f"{fm.rel}::{member}"
        return f"{fm.rel}:{normalize_expr(expr)}"


# ---------------------------------------------------------------------------
# Rule: tag-pairing / tag-reuse
# ---------------------------------------------------------------------------

ENDPOINT_RE = re.compile(
    r"(\w+)?\s*(?:\.|->)\s*(send|recv|irecv|sendrecv|deliver)\s*\(")
SEND_KINDS = {"send": "send", "sendrecv": "both", "recv": "recv",
              "irecv": "recv", "deliver": "send"}


def deliver_tag_arg(args: list[str]) -> str | None:
    """Tag expression of a Backend::deliver call site.

    The backend API (comm/backend.hpp) moves the send endpoint one level
    down: deliver(src, dst, Envelope{world_src, comm_id, tag, payload,
    flow_id}).  The tag is the third field of the envelope aggregate, so
    resolve it from the braced initializer instead of the argument list.
    """
    if not args:
        return None
    brace = args[-1].find("{")
    if brace < 0 or not args[-1].rstrip().endswith("}"):
        return None
    fields = split_args(args[-1][brace + 1:args[-1].rindex("}")])
    return fields[2] if len(fields) >= 3 else None


def resolve_tag_family(expr: str, fm: FileModel, tag_const_names: set, depth=0):
    norm = normalize_expr(expr)
    for name in tag_const_names:
        if re.search(rf"\b{re.escape(name)}\b", expr):
            return ("const", name)
    if depth < 2 and norm in fm.assignments:
        rhs, _ofs = fm.assignments[norm]
        fam = resolve_tag_family(rhs, fm, tag_const_names, depth + 1)
        if fam[0] == "const":
            return fam
        for cm in CALL_RE.finditer(rhs):
            for ffm, fn in [(fm, f) for f in fm.functions if f.name == cm.group(1)]:
                body = ffm.text[fn.body_start:fn.body_end]
                for name in tag_const_names:
                    if re.search(rf"\b{re.escape(name)}\b", body):
                        return ("const", name)
        return ("local", fm.rel, norm)
    if re.fullmatch(r"[\w.]+(->[\w.]+)*", norm):
        return ("local", fm.rel, norm)
    return ("expr", fm.rel, norm)


def check_tags(tree: TreeModel, findings: list):
    scoped = [fm for fm in tree.files
              if tree.fixture_mode or not fm.rel.startswith("src/comm/")]
    tag_const_names = set()
    consts = []  # (name, value, subsystem, fm, ofs)
    for fm in scoped:
        for name, value, ofs in fm.tag_consts:
            tag_const_names.add(name)
            consts.append((name, value, fm.subsystem, fm, ofs))

    # tag-reuse: base values must be distinct across subsystems.
    by_value = {}
    for name, value, subsystem, fm, ofs in consts:
        if value is None or not re.search(r"Tag(Base)?$", name):
            continue
        by_value.setdefault(value, []).append((name, subsystem, fm, ofs))
    for value, users in sorted(by_value.items()):
        subsystems = {u[1] for u in users}
        if len(subsystems) > 1:
            name, _sub, fm, ofs = users[-1]
            others = ", ".join(f"{n} ({s})" for n, s, _f, _o in users[:-1])
            findings.append(Finding(
                "tag-reuse", fm.rel, line_of(fm.text, ofs),
                f"tag constant {name} = {value} collides with {others}; "
                f"tag values must be unique across subsystems"))

    # tag-pairing: each family needs a send-side and a recv-side endpoint.
    families = {}  # family -> {"send": [(fm, ofs)], "recv": [...]}
    for fm in scoped:
        for m in ENDPOINT_RE.finditer(fm.text):
            open_paren = fm.text.index("(", m.end() - 1)
            close = match_paren(fm.text, open_paren)
            if close < 0:
                continue
            args = split_args(fm.text[open_paren + 1:close - 1])
            if m.group(2) == "deliver":
                tag_arg = deliver_tag_arg(args)
            else:
                tag_arg = args[1] if len(args) >= 2 else None
            if tag_arg is None:
                continue
            family = resolve_tag_family(tag_arg, fm, tag_const_names)
            entry = families.setdefault(family, {"send": [], "recv": []})
            kind = SEND_KINDS[m.group(2)]
            for k in (("send", "recv") if kind == "both" else (kind,)):
                entry[k].append((fm, m.start()))
    for family in sorted(families, key=str):
        entry = families[family]
        for missing, present in (("recv", "send"), ("send", "recv")):
            if entry[missing] or not entry[present]:
                continue
            fm, ofs = entry[present][0]
            label = family[1] if family[0] == "const" else family[-1]
            findings.append(Finding(
                "tag-pairing", fm.rel, line_of(fm.text, ofs),
                f"tag family '{label}' has {len(entry[present])} {present} "
                f"endpoint(s) but no {missing} endpoint anywhere in the tree"))


# ---------------------------------------------------------------------------
# Rule: comm-deadline (dataflow)
# ---------------------------------------------------------------------------

DEADLINE_WORD = re.compile(r"timeout|deadline|chrono", re.IGNORECASE)
BLOCKING_RE = re.compile(r"(\w+)?\s*(?:\.|->)\s*(recv|sendrecv|wait|shrink)\s*\(")
DEADLINE_DIRS = ("src/core/", "src/datastore/")
# The Deadline options type has an explicit unbounded spelling; it contains
# the word "deadline" but must NOT satisfy this rule — an explicit never()
# at a call site in src/core or src/datastore is exactly the hang the rule
# exists to catch.
NEVER_DEADLINE_RE = re.compile(r"(?:Deadline\s*::\s*)?\bnever\s*\(\s*\)")


def identifier_has_deadline_decl(ident: str, fm: FileModel) -> bool:
    """True if `ident` is declared/assigned from something deadline-shaped."""
    for m in re.finditer(
            rf"([\w:<>,&\s]*?)\b{re.escape(ident)}\b\s*[=({{]([^;]*)[;)]", fm.text):
        if DEADLINE_WORD.search(m.group(1)) or DEADLINE_WORD.search(m.group(2)):
            return True
    return False


def args_have_deadline(argtext: str, fm: FileModel) -> bool:
    """True when a call's argument text reaches a bounded deadline: either a
    deadline-shaped word appears inline (excluding the explicit never()
    spelling) or one of the arguments is an identifier whose declaration
    carries one."""
    if DEADLINE_WORD.search(NEVER_DEADLINE_RE.sub("", argtext)):
        return True
    for arg in split_args(argtext):
        if re.fullmatch(r"\w+", arg) and identifier_has_deadline_decl(arg, fm):
            return True
    return False


def check_deadlines(tree: TreeModel, findings: list):
    for fm in tree.files:
        if not tree.fixture_mode and not fm.rel.startswith(DEADLINE_DIRS):
            continue
        for m in BLOCKING_RE.finditer(fm.text):
            receiver = m.group(1) or ""
            if receiver.rstrip("_").endswith("cv") or receiver in ("this",):
                continue
            open_paren = fm.text.index("(", m.end() - 1)
            close = match_paren(fm.text, open_paren)
            if close < 0:
                continue
            argtext = fm.text[open_paren + 1:close - 1]
            if args_have_deadline(argtext, fm):
                continue
            findings.append(Finding(
                "comm-deadline", fm.rel, line_of(fm.text, m.start()),
                f"blocking {m.group(2)}() without a reachable deadline "
                f"argument (args: '{argtext.strip() or '<none>'}'); pass a "
                f"timeout or a variable whose declaration carries one"))


# ---------------------------------------------------------------------------
# Rule: sched-ack (protocol)
# ---------------------------------------------------------------------------
# The elastic scheduler's command/ack protocol (core/scheduler.hpp): every
# file that SENDS on the scheduler command namespace (a tag resolving to a
# kSched...CmdTag... constant) must also RECEIVE on the matching ack
# namespace (kSched...AckTag...) under a bounded deadline. A scheduler that
# issues commands without a deadline-bounded ack collection hangs forever
# on the first dead target — exactly the failure mode the command/ack
# protocol exists to prevent.

SCHED_CMD_CONST = re.compile(r"kSched\w*CmdTag")
SCHED_ACK_CONST = re.compile(r"kSched\w*AckTag")


def check_sched_protocol(tree: TreeModel, findings: list):
    scoped = [fm for fm in tree.files
              if tree.fixture_mode or not fm.rel.startswith("src/comm/")]
    tag_const_names = set()
    for fm in scoped:
        for name, _value, _ofs in fm.tag_consts:
            tag_const_names.add(name)
    for fm in scoped:
        cmd_send_ofs = None
        bounded_ack_recv = False
        for m in ENDPOINT_RE.finditer(fm.text):
            open_paren = fm.text.index("(", m.end() - 1)
            close = match_paren(fm.text, open_paren)
            if close < 0:
                continue
            args = split_args(fm.text[open_paren + 1:close - 1])
            if m.group(2) == "deliver":
                tag_arg = deliver_tag_arg(args)
            else:
                tag_arg = args[1] if len(args) >= 2 else None
            if tag_arg is None:
                continue
            family = resolve_tag_family(tag_arg, fm, tag_const_names)
            if family[0] != "const":
                continue
            kind = SEND_KINDS[m.group(2)]
            if kind in ("send", "both") and SCHED_CMD_CONST.search(family[1]):
                if cmd_send_ofs is None:
                    cmd_send_ofs = m.start()
            if kind in ("recv", "both") and SCHED_ACK_CONST.search(family[1]):
                argtext = fm.text[open_paren + 1:close - 1]
                if args_have_deadline(argtext, fm):
                    bounded_ack_recv = True
        if cmd_send_ofs is not None and not bounded_ack_recv:
            findings.append(Finding(
                "sched-ack", fm.rel, line_of(fm.text, cmd_send_ofs),
                "scheduler command send (kSched...CmdTag namespace) without "
                "a deadline-bounded ack recv (kSched...AckTag) in the same "
                "file; a dead target would hang the scheduler forever"))


# ---------------------------------------------------------------------------
# Rule: lock-order
# ---------------------------------------------------------------------------

def body_acquisitions(tree: TreeModel, fm: FileModel, fn: FunctionDef,
                      blank_lambdas: bool):
    """[(lock_id, acq_ofs, scope_end)] for MutexLock declarations in the body."""
    text = fm.text
    lambdas = fm.lambda_extents(fn.body_start, fn.body_end) if blank_lambdas else []

    def in_lambda(ofs):
        return any(s < ofs <= e for s, e in lambdas)

    out = []
    for m in ACQ_RE.finditer(text, fn.body_start, fn.body_end):
        if in_lambda(m.start()):
            continue
        open_paren = text.index("(", m.end() - 1)
        close = match_paren(text, open_paren)
        if close < 0:
            continue
        expr = text[open_paren + 1:close - 1]
        lock_id = tree.resolve_lock(expr, fn.cls, fm)
        depth, scope_end = 0, fn.body_end
        for i in range(close, fn.body_end):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth < 0:
                    scope_end = i
                    break
        out.append((lock_id, m.start(), scope_end))
    return out


def acquired_closure(tree: TreeModel, fm: FileModel, fn: FunctionDef,
                     memo: dict, stack: set) -> set:
    key = (fm.rel, fn.head_ofs)
    if key in memo:
        return memo[key]
    if key in stack:
        return set()
    stack.add(key)
    locks = {lock for lock, _ofs, _end in body_acquisitions(tree, fm, fn, True)}
    for expr in fn.acquires:
        locks.add(tree.resolve_lock(expr, fn.cls, fm))
    lambdas = fm.lambda_extents(fn.body_start, fn.body_end)
    for cm in CALL_RE.finditer(fm.text, fn.body_start, fn.body_end):
        if any(s < cm.start() <= e for s, e in lambdas):
            continue
        locks |= callee_closure(tree, cm.group(1), memo, stack)
    stack.discard(key)
    memo[key] = locks
    return locks


def callee_closure(tree: TreeModel, name: str, memo: dict, stack: set) -> set:
    if name in CALL_NAME_BLOCKLIST or name in CPP_KEYWORDS:
        return set()
    defs = tree.functions.get(name, [])
    if not defs or len({fn.cls for _fm, fn in defs} | {None}) > 2:
        return set()  # unknown or ambiguous across classes
    out = set()
    for dfm, dfn in defs:
        out |= acquired_closure(tree, dfm, dfn, memo, stack)
    return out


def check_lock_order(tree: TreeModel, findings: list):
    edges = {}  # held -> {acquired: (fm, line)}
    memo = {}
    for fm in tree.files:
        for fn in fm.functions:
            acqs = body_acquisitions(tree, fm, fn, True)
            held = [(tree.resolve_lock(e, fn.cls, fm), fn.body_start, fn.body_end)
                    for e in tree.fn_requires(fm, fn)]
            held += acqs
            lambdas = fm.lambda_extents(fn.body_start, fn.body_end)
            for lock_a, start_a, end_a in held:
                for lock_b, ofs_b, _end_b in acqs:
                    if start_a < ofs_b <= end_a and lock_a != lock_b:
                        edges.setdefault(lock_a, {}).setdefault(
                            lock_b, (fm, line_of(fm.text, ofs_b)))
                for cm in CALL_RE.finditer(fm.text, max(start_a, fn.body_start),
                                           min(end_a, fn.body_end)):
                    if any(s < cm.start() <= e for s, e in lambdas):
                        continue
                    for lock_b in callee_closure(tree, cm.group(1), memo, set()):
                        if lock_b != lock_a:
                            edges.setdefault(lock_a, {}).setdefault(
                                lock_b, (fm, line_of(fm.text, cm.start())))
    # Cycle detection (DFS, three-color).
    color, reported = {}, set()

    def dfs(node, path):
        color[node] = 1
        for succ in sorted(edges.get(node, {})):
            if color.get(succ, 0) == 1:
                cycle = tuple(path[path.index(succ):] + [succ]) \
                    if succ in path else (node, succ, node)
                canon = tuple(sorted(cycle[:-1]))
                if canon not in reported:
                    reported.add(canon)
                    fm, line = edges[node][succ]
                    findings.append(Finding(
                        "lock-order", fm.rel, line,
                        "lock-order cycle: " + " -> ".join(cycle) +
                        " (potential deadlock; acquire locks in one global order)"))
            elif color.get(succ, 0) == 0:
                dfs(succ, path + [succ])
        color[node] = 2

    for node in sorted(edges):
        if color.get(node, 0) == 0:
            dfs(node, [node])


# ---------------------------------------------------------------------------
# Rule: rank-binding
# ---------------------------------------------------------------------------

BIND_WORD = re.compile(r"bind_rank|RankBinding|set_thread_name")
THREAD_CTOR_RE = re.compile(r"std\s*::\s*thread\s*(?:\w+\s*)?[({]")
VECTOR_SPAWN_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*(?:emplace_back|push_back)\s*\(")
SUBMIT_RE = re.compile(r"(?:\.|->)\s*submit\s*(?:<[^>;{]*>)?\s*\(")


def lambda_body_at(fm: FileModel, ofs: int, limit: int):
    """Body text of the lambda starting at or just after `ofs`, else None."""
    i = ofs
    while i < limit and fm.text[i].isspace():
        i += 1
    if i >= limit or fm.text[i] != "[":
        return None
    for start, end in fm.lambda_extents(i, limit):
        return fm.text[start:end]
    return None


def lambda_binds_rank(tree: TreeModel, fm: FileModel, body: str) -> bool:
    if BIND_WORD.search(body):
        return True
    for cm in CALL_RE.finditer(body):
        for dfm, dfn in tree.functions.get(cm.group(1), []):
            if BIND_WORD.search(dfm.text[dfn.body_start:dfn.body_end]):
                return True
    return False


def check_rank_binding(tree: TreeModel, findings: list):
    for fm in tree.files:
        limit = len(fm.text)
        sites = []  # (ofs, lambda_search_ofs, what)
        for m in THREAD_CTOR_RE.finditer(fm.text):
            sites.append((m.start(), m.end(), "std::thread"))
        for m in VECTOR_SPAWN_RE.finditer(fm.text):
            if m.group(1) in tree.thread_vectors:
                sites.append((m.start(), m.end(), f"{m.group(1)}.emplace_back"))
        for m in SUBMIT_RE.finditer(fm.text):
            open_paren = fm.text.rindex("(", m.start(), m.end())
            sites.append((m.start(), open_paren + 1, "pool submit"))
        for ofs, search_ofs, what in sites:
            body = lambda_body_at(fm, search_ofs, limit)
            if body is None:
                continue  # not a lambda launch (or a declaration) — skip
            if not lambda_binds_rank(tree, fm, body):
                findings.append(Finding(
                    "rank-binding", fm.rel, line_of(fm.text, ofs),
                    f"{what} launches a lambda that never binds telemetry "
                    f"rank identity (bind_rank / RankBinding / "
                    f"set_thread_name), so its work is misattributed"))


# ---------------------------------------------------------------------------
# Rule: guarded-field
# ---------------------------------------------------------------------------

def check_guarded_fields(tree: TreeModel, findings: list):
    for cls, members in sorted(tree.guard_index.items(), key=str):
        if cls is None:
            continue
        defs = [(fm, fn) for fm in tree.files for fn in fm.functions
                if fn.cls == cls]
        for member, guard, _decl_fm in members:
            guard_name = re.split(r"\.|->", normalize_expr(guard))[-1]
            for fm, fn in defs:
                if fn.name == cls or fn.name.startswith("~"):
                    continue  # ctors/dtors: no concurrent access yet/any more
                requires = tree.fn_requires(fm, fn)
                if any(re.split(r"\.|->", normalize_expr(e))[-1] == guard_name
                       for e in requires):
                    continue
                acqs = [(ofs, end) for lock, ofs, end
                        in body_acquisitions(tree, fm, fn, False)
                        if lock.split("::")[-1].split(":")[-1] == guard_name]
                for am in re.finditer(rf"\b{re.escape(member)}\b",
                                      fm.text, ):
                    if not (fn.body_start < am.start() < fn.body_end):
                        continue
                    prev = fm.text[:am.start()].rstrip()[-2:]
                    if prev.endswith(".") or prev.endswith("->") or \
                            prev.endswith("::"):
                        continue  # prefixed access: Clang TSA territory
                    if any(ofs < am.start() <= end for ofs, end in acqs):
                        continue
                    findings.append(Finding(
                        "guarded-field", fm.rel, line_of(fm.text, am.start()),
                        f"{cls}::{fn.name} reads/writes '{member}' (guarded "
                        f"by {guard_name}) without holding the lock: wrap in "
                        f"util::MutexLock or annotate LTFB_REQUIRES"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_RULES = ("tag-pairing", "tag-reuse", "comm-deadline", "sched-ack",
             "lock-order", "rank-binding", "guarded-field")


def build_tree(root: Path, files: list[Path], fixture_mode: bool) -> TreeModel:
    models = []
    for path in sorted(files):
        rel = path.relative_to(root).as_posix()
        if rel.endswith("util/annotations.hpp"):
            continue  # the vocabulary itself, not a subject
        parts = Path(rel).parts
        if fixture_mode:
            subsystem = parts[0] if len(parts) > 1 else Path(rel).stem
        else:
            subsystem = parts[1] if len(parts) > 1 and parts[0] == "src" \
                else parts[0]
        models.append(FileModel(path, rel, subsystem))
    return TreeModel(models, fixture_mode)


def run_rules(tree: TreeModel) -> list[Finding]:
    findings: list[Finding] = []
    check_tags(tree, findings)
    check_deadlines(tree, findings)
    check_sched_protocol(tree, findings)
    check_lock_order(tree, findings)
    check_rank_binding(tree, findings)
    check_guarded_fields(tree, findings)
    unique = {f.key(): f for f in findings}
    return sorted(unique.values(), key=Finding.key)


def scan_tree(root: Path) -> list[Finding]:
    src = root / "src"
    files = sorted(list(src.rglob("*.cpp")) + list(src.rglob("*.hpp")))
    if not files:
        return None
    return run_rules(build_tree(root, files, fixture_mode=False))


EXPECT_RE = re.compile(r"//\s*expect-finding:\s*([\w-]+)")


def run_fixtures(fixtures_dir: Path) -> bool:
    """Each top-level entry (file or directory) is analyzed in isolation and
    must produce exactly the rule set its expect-finding comments declare."""
    if not fixtures_dir.is_dir():
        print(f"ltfb_static: fixtures directory not found: {fixtures_dir}",
              file=sys.stderr)
        return False
    entries = sorted(fixtures_dir.iterdir(), key=lambda p: p.name)
    ok = True
    for entry in entries:
        if entry.name.startswith(".") or entry.suffix in (".md", ".txt"):
            continue
        files = [entry] if entry.is_file() else \
            sorted(list(entry.rglob("*.cpp")) + list(entry.rglob("*.hpp")))
        files = [f for f in files if f.suffix in (".cpp", ".hpp")]
        if not files:
            continue
        expected = set()
        for f in files:
            expected |= {m.group(1) for m in EXPECT_RE.finditer(f.read_text())}
        root = entry if entry.is_dir() else fixtures_dir
        findings = run_rules(build_tree(root, files, fixture_mode=True))
        fired = {f.rule for f in findings}
        missing = expected - fired
        extra = fired - expected
        if missing or extra:
            ok = False
            print(f"FAIL {entry.name}: expected {sorted(expected)}, "
                  f"fired {sorted(fired)}")
            for f in findings:
                print(f"    {f}")
        else:
            print(f"ok   {entry.name}: {sorted(fired) or '(clean)'}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(
        description="LTFB comm-protocol & concurrency-contract analyzer")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="run the known-bad fixture suite in DIR instead "
                             "of scanning the tree")
    parser.add_argument("--validate", action="store_true",
                        help="tree must be clean AND every fixture must fire")
    args = parser.parse_args()
    root = Path(args.root).resolve()

    if args.fixtures and not args.validate:
        return 0 if run_fixtures(Path(args.fixtures).resolve()) else 1

    if args.validate:
        findings = scan_tree(root)
        if findings is None:
            print("ltfb_static: no sources under src/", file=sys.stderr)
            return 1
        for f in findings:
            print(f)
        tree_clean = not findings
        print(f"tree: {'clean' if tree_clean else f'{len(findings)} finding(s)'}")
        fixtures_dir = Path(args.fixtures).resolve() if args.fixtures \
            else root / "tests" / "test_static_fixtures"
        fixtures_ok = run_fixtures(fixtures_dir)
        print(f"fixtures: {'ok' if fixtures_ok else 'FAILED'}")
        return 0 if (tree_clean and fixtures_ok) else 1

    findings = scan_tree(root)
    if findings is None:
        print("ltfb_static: no sources under src/", file=sys.stderr)
        return 126
    if args.json:
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        if findings:
            print(f"\nltfb_static: {len(findings)} finding(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main())
