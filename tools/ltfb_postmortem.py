#!/usr/bin/env python3
"""Postmortem analyzer for LTFB flight-recorder dumps (DESIGN.md §16).

Consumes the artifacts a failed (or stalled) distributed run leaves behind:

  * per-rank ``postmortem_rank<N>.json`` files written by the flight
    recorder's crash handler, watchdog, or unwind hooks — each holds the
    rank identity, the per-thread event rings and live span stacks, the
    heartbeat counters, and the in-flight comm-op registry at dump time;
  * the supervisor's merged ``postmortem_run.json`` written by
    World::spawn_processes after reaping, which records every child's exit
    disposition and embeds each dead rank's own dump verbatim;
  * optionally the Chrome trace of the same run, for cross-checking the
    flow-correlation ids stamped on comm_send events against the trace's
    flow arrows.

and renders a blame summary: which rank failed and how (exit taxonomy,
signal, injected fault, stall), the deepest span that was open when it
died, the comm operation it was blocked in (op, tag, peer, age), and the
last N flight-recorder events leading up to the failure.

Span stacks are reconstructed two ways. A signal crash dumps the live
stack directly (``span_stack``). An exception unwind pops spans before the
top-level handler runs, so for those dumps the analyzer replays the event
ring up to the failure point (the last fault / comm_op / wait_begin event)
and reports the spans open *there* — the stack as it stood when the rank
began to die, not after the unwind emptied it.

--validate turns the analyzer into a CI gate: structural invariants of
every dump (schema tag, known kinds, event-kind vocabulary, rank binding on
the failing thread, pending-op row shape), plus run-report invariants
(world size matches, every rank that died inside the fault taxonomy or by
signal embeds a postmortem, every stall dump carries a blame object). It
exits non-zero on the first violation.

Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import sys

RUN_SCHEMA = "ltfb-postmortem-run-v1"
RANK_SCHEMA = "ltfb-postmortem-v1"

KNOWN_KINDS = {"crash", "stall", "fault_injected", "rank_failed", "timeout",
               "error"}
EVENT_KINDS = {"span_begin", "span_end", "comm_op", "comm_send", "comm_recv",
               "wait_begin", "wait_end", "fault"}
# Exit codes children use to report the fault taxonomy (World::kExit*).
EXIT_FAULT_CODES = {42, 43, 44}
RANK_FILE_RE = re.compile(r"postmortem_rank(\d+)\.json$")

# Events that mark "the rank was doing comm when it died": blame anchors.
BLAME_EVENT_KINDS = {"fault", "comm_op", "wait_begin"}


class ValidationError(Exception):
    pass


def check(cond, message):
    if not cond:
        raise ValidationError(message)


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------------
# Loading: accept a run report, a single rank dump, or a directory.


def discover(path):
    """Returns (run_report_or_None, [(source_name, rank_dump), ...])."""
    if os.path.isdir(path):
        run_path = os.path.join(path, "postmortem_run.json")
        if os.path.exists(run_path):
            return discover(run_path)
        dumps = []
        for name in sorted(os.listdir(path)):
            if RANK_FILE_RE.search(name):
                dumps.append((name, load_json(os.path.join(path, name))))
        check(dumps, f"no postmortem files found in {path}")
        return None, dumps
    doc = load_json(path)
    schema = doc.get("schema")
    if schema == RUN_SCHEMA:
        dumps = [(f"rank{row['rank']}", row["postmortem"])
                 for row in doc.get("ranks", [])
                 if row.get("postmortem") is not None]
        return doc, dumps
    check(schema == RANK_SCHEMA,
          f"{path}: unknown schema {schema!r} "
          f"(expected {RANK_SCHEMA} or {RUN_SCHEMA})")
    return None, [(os.path.basename(path), doc)]


# ----------------------------------------------------------------------------
# Blame derivation.


def failing_thread(dump):
    """The thread whose events tell the failure story: the one bound to the
    dump's rank, else the busiest one."""
    threads = dump.get("threads", [])
    bound = [t for t in threads if t.get("rank") == dump.get("rank")]
    pool = bound or threads
    if not pool:
        return None
    return max(pool, key=lambda t: len(t.get("events", [])))


def failure_point(events):
    """Index of the event at which the rank began to die (last blame-anchor
    event), else the end of the ring."""
    for i in range(len(events) - 1, -1, -1):
        if events[i].get("kind") in BLAME_EVENT_KINDS:
            return i
    return len(events) - 1


def replay_open_spans(events, upto):
    """Replays span_begin/span_end over events[:upto+1]; returns the open
    stack (oldest first). Ring truncation can orphan span_ends — those pop
    nothing."""
    stack = []
    for event in events[: upto + 1]:
        kind = event.get("kind")
        if kind == "span_begin":
            stack.append(event)
        elif kind == "span_end" and stack:
            stack.pop()
    return stack


def open_spans(dump):
    """Open spans of the failing thread at the failure point: the live
    span_stack when the dump captured one (signal crash, stall), else a
    replay of the event ring (exception unwind)."""
    thread = failing_thread(dump)
    if thread is None:
        return [], None
    live = thread.get("span_stack", [])
    if live:
        return [{"name": s["name"]} for s in live], thread
    events = thread.get("events", [])
    if not events:
        return [], thread
    replayed = replay_open_spans(events, failure_point(events))
    return [{"name": e["name"]} for e in replayed], thread


def blocked_op(dump):
    """The comm operation the rank was blocked in (or entering) when it
    died: the explicit blame object (stalls), else the oldest pending op,
    else the last comm_op/wait_begin event of the failing thread."""
    blame = dump.get("blame")
    if blame:
        return dict(blame, source="blame")
    pending = dump.get("pending_ops", [])
    if pending:
        oldest = max(pending, key=lambda p: p.get("age_ns", 0))
        return dict(oldest, source="pending_op")
    thread = failing_thread(dump)
    if thread is None:
        return None
    events = thread.get("events", [])
    # Prefer "comm/..."-named events: those carry the user-level tag and
    # world peer. Bare op-index events (fault_tick bookkeeping) are the
    # fallback.
    fallback = None
    for event in reversed(events):
        if event.get("kind") not in ("comm_op", "wait_begin"):
            continue
        row = {"op": event["name"], "tag": event.get("a"),
               "peer": event.get("b"), "rank": dump.get("rank"),
               "source": "last_event"}
        if str(event.get("name", "")).startswith("comm/"):
            return row
        fallback = fallback or row
    return fallback


def summarize(source, dump, last):
    spans, thread = open_spans(dump)
    op = blocked_op(dump)
    events = (thread or {}).get("events", [])
    return {
        "source": source,
        "rank": dump.get("rank"),
        "kind": dump.get("kind"),
        "reason": dump.get("reason"),
        "signal": dump.get("signal_name") or None,
        "deepest_span": spans[-1]["name"] if spans else None,
        "open_spans": [s["name"] for s in spans],
        "blocked_op": op,
        "thread": (thread or {}).get("name") or None,
        "dropped_events": dump.get("dropped_events", 0),
        "last_events": [
            {"kind": e.get("kind"), "name": e.get("name"),
             "ts_ns": e.get("ts_ns"), "a": e.get("a"), "b": e.get("b")}
            for e in events[-last:]
        ],
    }


# ----------------------------------------------------------------------------
# Trace cross-check: comm_send flow ids should appear in the Chrome trace.


def trace_flow_ids(path):
    doc = load_json(path)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    ids = set()
    for event in events:
        if event.get("ph") in ("s", "f") and "id" in event:
            ids.add(int(str(event["id"]), 0))
    return ids


def dump_flow_ids(dump):
    ids = set()
    for thread in dump.get("threads", []):
        for event in thread.get("events", []):
            if event.get("kind") in ("comm_send", "comm_recv"):
                flow = event.get("c", "0x0")
                value = int(str(flow), 0)
                if value:
                    ids.add(value)
    return ids


def cross_check(dumps, trace_path):
    """Returns (matched, total) counts of postmortem flow ids found among
    the trace's flow-event ids."""
    trace_ids = trace_flow_ids(trace_path)
    pm_ids = set()
    for _, dump in dumps:
        pm_ids |= dump_flow_ids(dump)
    return len(pm_ids & trace_ids), len(pm_ids)


# ----------------------------------------------------------------------------
# Validation.


def validate_rank_dump(name, dump):
    check(dump.get("schema") == RANK_SCHEMA,
          f"{name}: schema is {dump.get('schema')!r}")
    check(dump.get("kind") in KNOWN_KINDS,
          f"{name}: unknown kind {dump.get('kind')!r}")
    check(isinstance(dump.get("rank"), int) and dump["rank"] >= 0,
          f"{name}: missing rank binding")
    threads = dump.get("threads")
    check(isinstance(threads, list) and threads,
          f"{name}: no thread states captured")
    bound = [t for t in threads if t.get("rank") == dump["rank"]]
    check(bound, f"{name}: no thread bound to failing rank {dump['rank']}")
    check(any(t.get("events") for t in bound),
          f"{name}: failing rank's threads recorded no events")
    for thread in threads:
        for event in thread.get("events", []):
            check(event.get("kind") in EVENT_KINDS,
                  f"{name}: unknown event kind {event.get('kind')!r}")
    for op in dump.get("pending_ops", []):
        check(all(k in op for k in ("op", "tag", "peer", "rank", "age_ns")),
              f"{name}: malformed pending op row {op}")
    if dump.get("kind") == "stall":
        blame = dump.get("blame")
        check(blame and "op" in blame and "tag" in blame and "peer" in blame,
              f"{name}: stall dump lacks a blame object")
    check(blocked_op(dump) is not None,
          f"{name}: cannot derive a blocked/entering comm op")


def validate_run_report(report):
    ranks = report.get("ranks", [])
    check(report.get("world_size") == len(ranks),
          f"run report: world_size {report.get('world_size')} != "
          f"{len(ranks)} rank rows")
    for row in ranks:
        check(isinstance(row.get("rank"), int), "run report: row lacks rank")
        died = (row.get("exit_code") in EXIT_FAULT_CODES
                or row.get("term_signal", 0) != 0)
        if died:
            check(row.get("postmortem") is not None,
                  f"run report: rank {row['rank']} died "
                  f"(exit {row.get('exit_code')}, signal "
                  f"{row.get('term_signal')}) without a postmortem")
        if row.get("postmortem") is not None:
            validate_rank_dump(f"rank{row['rank']}", row["postmortem"])


def validate(report, dumps, expect_kinds, expect_failures):
    if report is not None:
        validate_run_report(report)
    else:
        for name, dump in dumps:
            validate_rank_dump(name, dump)
    if expect_failures is not None:
        check(len(dumps) >= expect_failures,
              f"expected >= {expect_failures} postmortems, got {len(dumps)}")
    for kind in expect_kinds:
        check(any(d.get("kind") == kind for _, d in dumps),
              f"expected a postmortem of kind {kind!r}, "
              f"got {[d.get('kind') for _, d in dumps]}")


# ----------------------------------------------------------------------------
# Rendering.


def format_op(op):
    if not op:
        return "(none recorded)"
    peer = op.get("peer")
    text = f"{op.get('op')} tag={op.get('tag')}"
    if peer is not None and peer >= 0:
        text += f" peer={peer}"
    if op.get("age_ns"):
        text += f" age={op['age_ns'] / 1e6:.1f}ms"
    return f"{text} [{op.get('source', '?')}]"


def format_report(report, summaries):
    lines = []
    if report is not None:
        lines.append(f"run: {report.get('world_size')} ranks")
        for row in report.get("ranks", []):
            state = ("clean" if row.get("clean")
                     else f"exit={row.get('exit_code')}"
                     + (f" signal={row['term_signal']}"
                        if row.get("term_signal") else ""))
            extra = " pre-rendezvous" if row.get("pre_rendezvous") else ""
            lines.append(f"  rank {row['rank']}: {state}{extra}")
        lines.append("")
    if not summaries:
        lines.append("no per-rank postmortems (run completed without dumps)")
        return "\n".join(lines)
    for s in summaries:
        lines.append(f"== rank {s['rank']} ({s['source']}): {s['kind']}"
                     + (f" [{s['signal']}]" if s["signal"] else ""))
        lines.append(f"   reason: {s['reason']}")
        if s["open_spans"]:
            lines.append("   open spans: " + " > ".join(s["open_spans"]))
            lines.append(f"   deepest span: {s['deepest_span']}")
        else:
            lines.append("   open spans: (none at failure point)")
        lines.append("   blocked comm op: " + format_op(s["blocked_op"]))
        if s["dropped_events"]:
            lines.append(f"   dropped events: {s['dropped_events']}")
        lines.append(f"   last {len(s['last_events'])} events "
                     f"(thread {s['thread'] or '?'}):")
        for e in s["last_events"]:
            lines.append(f"     {e['ts_ns']:>12} {e['kind']:<10} {e['name']}"
                         f" a={e['a']} b={e['b']}")
        lines.append("")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path",
                        help="postmortem_run.json, a postmortem_rank<N>.json, "
                             "or a directory containing them")
    parser.add_argument("--trace",
                        help="Chrome trace of the same run: cross-check "
                             "flow-correlation ids on comm events")
    parser.add_argument("--last", type=int, default=10,
                        help="events to show per failing rank (default 10)")
    parser.add_argument("--validate", action="store_true",
                        help="check structural invariants and exit non-zero "
                             "on the first violation")
    parser.add_argument("--expect-kind", action="append", default=[],
                        help="with --validate: require a postmortem of this "
                             "kind (repeatable)")
    parser.add_argument("--expect-failures", type=int, default=None,
                        help="with --validate: require at least this many "
                             "per-rank postmortems")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    args = parser.parse_args(argv)

    try:
        report, dumps = discover(args.path)
        if args.validate:
            validate(report, dumps, args.expect_kind, args.expect_failures)
        summaries = [summarize(name, dump, args.last)
                     for name, dump in dumps]
        result = {"summaries": summaries}
        if report is not None:
            result["ranks"] = report.get("ranks", [])
        if args.trace:
            matched, total = cross_check(dumps, args.trace)
            result["flow_ids_matched"] = matched
            result["flow_ids_total"] = total
            if args.validate and total:
                check(matched > 0,
                      f"none of {total} postmortem flow ids appear in "
                      f"{args.trace}")
    except (ValidationError, OSError, ValueError, KeyError) as err:
        print(f"ltfb_postmortem: FAIL: {err}", file=sys.stderr)
        return 1

    if args.json:
        json.dump(result, sys.stdout, indent=1)
        print()
    else:
        print(format_report(report, summaries))
        if args.trace:
            print(f"flow-id cross-check: {result['flow_ids_matched']}/"
                  f"{result['flow_ids_total']} postmortem flow ids present "
                  f"in trace")
    if args.validate:
        print("ltfb_postmortem: OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    # Die quietly when piped into `head`.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
