#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_<name>.json metrics dump against
the checked-in floor in bench/baseline.json.

Usage:
    tools/bench_check.py BENCH_micro_kernels.json [--baseline bench/baseline.json]

baseline.json maps gauge names to entries:

    {
      "bench/gemm_serial_gflops": {"min": 8.0,
                                   "note": "512^3 serial, 1-core CI box",
                                   "configs": {
                                     "simd=avx2": {"min": 20.0},
                                     "simd=scalar": {"min": 8.0}}}
    }

A gauge regresses when its measured value drops below the applicable `min`.
The floors are set ~20% under a healthy measurement so ordinary CI jitter
passes but a real kernel regression (a de-tiled GEMM, an accidentally
serial hot loop) fails the job. Gauges present in the dump but absent from
the baseline are informational only; gauges in the baseline but missing
from the dump are an error (the bench stopped measuring them).

Per-configuration floors: the dump self-identifies its build configuration
through the `bench/simd_width` gauge (1 = scalar, 4 = neon, 8 = avx2 —
cmake/LtfbSimd.cmake widths). When a baseline entry carries a `configs`
map and the dump's configuration key is present there, that entry's `min`
(and `note`) override the top-level floor; otherwise the top-level `min`
applies, so a dump from an unlisted configuration is still gated at the
portable floor. The report names the configuration it gated against.

Every run also schema-checks the telemetry blocks of the dump (counters /
gauges / timers produced by Registry::write_metrics_json) so a malformed
exporter fails CI even when no floor tripped. `--schema-only` runs just
that structural check — used by the observability CI job on metrics dumps
that have no bench floors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


TIMER_FIELDS = ("count", "total_s", "min_s", "max_s", "mean_s",
                "p50_s", "p95_s", "p99_s", "rate_per_s")
GAUGE_FIELDS = ("value", "max", "sets")

# cmake/LtfbSimd.cmake vector widths -> baseline configuration keys.
SIMD_CONFIG_KEYS = {1: "simd=scalar", 4: "simd=neon", 8: "simd=avx2"}


def dump_config_key(metrics: dict) -> str | None:
    """Configuration key the dump was produced under, from the
    self-identifying bench/simd_width gauge; None when the bench predates
    the gauge (or isn't the micro-kernel bench)."""
    gauge = metrics.get("gauges", {}).get("bench/simd_width")
    if not isinstance(gauge, dict):
        return None
    try:
        return SIMD_CONFIG_KEYS.get(int(gauge.get("value")))
    except (TypeError, ValueError):
        return None


def validate_schema(metrics: dict) -> list[str]:
    """Structural check on a Registry::write_metrics_json dump. Returns a
    list of violations (empty when the telemetry blocks are well-formed)."""
    errors = []
    for block in ("counters", "gauges", "timers"):
        if block not in metrics:
            errors.append(f"missing top-level block: {block}")
        elif not isinstance(metrics[block], dict):
            errors.append(f"{block}: expected an object")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            errors.append(f"counters/{name}: not a non-negative integer")
    for name, gauge in metrics.get("gauges", {}).items():
        for field in GAUGE_FIELDS:
            if not isinstance(gauge.get(field), (int, float)):
                errors.append(f"gauges/{name}: missing numeric '{field}'")
    for name, timer in metrics.get("timers", {}).items():
        for field in TIMER_FIELDS:
            if not isinstance(timer.get(field), (int, float)):
                errors.append(f"timers/{name}: missing numeric '{field}'")
        if all(isinstance(timer.get(f), (int, float)) for f in TIMER_FIELDS):
            if timer["count"] > 0 and not (
                    timer["min_s"] <= timer["mean_s"] <= timer["max_s"]):
                errors.append(f"timers/{name}: mean outside [min, max]")
            if timer["p99_s"] < timer["p95_s"] or timer["p95_s"] < timer["p50_s"]:
                errors.append(f"timers/{name}: percentiles not monotone")
            if timer["rate_per_s"] < 0:
                errors.append(f"timers/{name}: negative rate_per_s")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", type=pathlib.Path,
                        help="BENCH_<name>.json written by a bench binary")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("bench/baseline.json"))
    parser.add_argument("--schema-only", action="store_true",
                        help="only validate the telemetry block schema; "
                        "skip the baseline floor comparison")
    args = parser.parse_args()

    metrics = json.loads(args.metrics.read_text())

    schema_errors = validate_schema(metrics)
    if schema_errors:
        print(f"telemetry schema check FAILED for {args.metrics}:",
              file=sys.stderr)
        for error in schema_errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"telemetry schema ok: {len(metrics.get('counters', {}))} "
          f"counter(s), {len(metrics.get('gauges', {}))} gauge(s), "
          f"{len(metrics.get('timers', {}))} timer(s)")
    if args.schema_only:
        return 0

    baseline = json.loads(args.baseline.read_text())
    gauges = metrics.get("gauges", {})
    config = dump_config_key(metrics)
    print(f"gating configuration: {config or 'default (no simd_width gauge)'}")

    failures = []
    for name, floor in sorted(baseline.items()):
        if name not in gauges:
            failures.append(f"{name}: missing from {args.metrics}")
            continue
        value = gauges[name]["value"]
        override = floor.get("configs", {}).get(config) if config else None
        applied = override if override is not None else floor
        minimum = applied["min"]
        floor_label = config if override is not None else "default"
        status = "ok" if value >= minimum else "REGRESSED"
        note = applied.get("note", floor.get("note", ""))
        print(f"{name}: {value:.3f} (floor {minimum:.3f} [{floor_label}]) "
              f"{status}{'  # ' + note if note else ''}")
        if value < minimum:
            failures.append(f"{name}: {value:.3f} < floor {minimum:.3f} "
                            f"[{floor_label}]")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
