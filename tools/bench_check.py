#!/usr/bin/env python3
"""Bench regression gate: compare a BENCH_<name>.json metrics dump against
the checked-in floor in bench/baseline.json.

Usage:
    tools/bench_check.py BENCH_micro_kernels.json [--baseline bench/baseline.json]

baseline.json maps gauge names to entries:

    {
      "bench/gemm_serial_gflops": {"min": 8.0,
                                   "note": "512^3 serial, 1-core CI box"}
    }

A gauge regresses when its measured value drops below `min`. The floors are
set ~20% under a healthy measurement so ordinary CI jitter passes but a real
kernel regression (a de-tiled GEMM, an accidentally serial hot loop) fails
the job. Gauges present in the dump but absent from the baseline are
informational only; gauges in the baseline but missing from the dump are an
error (the bench stopped measuring them).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", type=pathlib.Path,
                        help="BENCH_<name>.json written by a bench binary")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path("bench/baseline.json"))
    args = parser.parse_args()

    metrics = json.loads(args.metrics.read_text())
    baseline = json.loads(args.baseline.read_text())
    gauges = metrics.get("gauges", {})

    failures = []
    for name, floor in sorted(baseline.items()):
        if name not in gauges:
            failures.append(f"{name}: missing from {args.metrics}")
            continue
        value = gauges[name]["value"]
        minimum = floor["min"]
        status = "ok" if value >= minimum else "REGRESSED"
        note = floor.get("note", "")
        print(f"{name}: {value:.3f} (floor {minimum:.3f}) {status}"
              f"{'  # ' + note if note else ''}")
        if value < minimum:
            failures.append(f"{name}: {value:.3f} < floor {minimum:.3f}")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
