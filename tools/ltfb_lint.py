#!/usr/bin/env python3
"""Repo-specific lint pass for the ltfb codebase.

Enforces invariants that clang-tidy cannot express (run as the `lint` ctest
target, so `ctest` and CI exercise it on every build):

  banned-call       src/ must not use std::rand/srand/time(nullptr)/assert()
                    (use util/rng and LTFB_ASSERT) or naked new/delete
                    (use containers / smart pointers).
  stdout            std::cout/std::cerr/printf are reserved for the
                    designated sinks (util/logging, util/table); libraries
                    must stay silent. bench/, examples/, tools/ are console
                    programs and exempt.
  include-hygiene   every header uses #pragma once; project includes are
                    quoted src/-relative paths (no "../", no <angle> form);
                    a .cpp includes its own header first so each header is
                    proven self-contained.
  comm-tags         the internal collective tag namespace (bit 62 set, see
                    Communicator::next_internal_tag) may only be minted
                    inside src/comm/communicator.cpp; user code must use
                    small non-negative int tags.
  entry-checks      public entry points of the concurrency substrate must
                    validate their arguments/state (LTFB_CHECK/LTFB_ASSERT
                    or an explicit throw) in their own body — the manifest
                    below names each one.
  matmul-nest       raw triple-nested multiply-accumulate loops are banned
                    outside src/tensor/: hand-rolled GEMMs silently bypass
                    the register-tiled, pool-threaded, conformance-tested
                    kernel (tensor::gemm/matmul) and its telemetry.
  isa-dispatch      raw ISA conditionals (__AVX2__/__SSE*/__ARM_NEON/
                    __aarch64__, the LTFB_SIMD_WIDTH macro, immintrin.h /
                    arm_neon.h includes) are banned outside
                    src/tensor/simd.hpp: all width dispatch goes through
                    the portable vec<W> wrapper so exactly one file knows
                    the target ISA and the scalar build stays honest.
  telemetry         src/, bench/ and examples/ must not spell util::Stopwatch
                    or include util/stopwatch.hpp directly (the shim exists
                    only for source compatibility; new timing goes through
                    src/telemetry), and every metric/span name literal handed
                    to the telemetry macros or Registry registration calls
                    must follow the subsystem/verb convention
                    ([a-z0-9_]+ segments joined by '/').

The comm-deadline and rank-bind rules that used to live here moved to
tools/ltfb_static.py, which models them properly (deadline dataflow through
local declarations; thread-launch call-site detection instead of a file
manifest) alongside the tag-pairing, lock-order and guarded-field protocol
checks.

Findings are reported per file in line order. Exit status is the number of
findings (0 = clean). `--list` prints the checked files; `--root` points at
the repo checkout (default: the parent of this script's directory).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SRC_EXTS = {".cpp", ".hpp"}

# Designated output sinks: the logging backend and the bench table printer.
STDOUT_ALLOWED = {"src/util/logging.cpp", "src/util/table.cpp"}

BANNED_PATTERNS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "banned-call",
     "std::rand/srand is banned; use util/rng.hpp (seeded, reproducible)"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "banned-call",
     "time(nullptr) is banned; timing comes from util/stopwatch.hpp and "
     "seeds from util/rng.hpp"),
    (re.compile(r"(?<![_\w.])assert\s*\("), "banned-call",
     "assert() is banned; use LTFB_ASSERT (stays live under "
     "LTFB_BOUNDS_CHECK) or LTFB_CHECK"),
    (re.compile(r"(?<![_\w])new\s+(?![(])[A-Za-z_]"), "banned-call",
     "naked new is banned; use std::make_unique/make_shared or a container"),
    (re.compile(r"(?<![_\w])delete\s+(?!;)[A-Za-z_(]"), "banned-call",
     "naked delete is banned; ownership belongs in smart pointers"),
]

STDOUT_PATTERN = re.compile(r"\bstd::(cout|cerr)\b|(?<![_\w.:])f?printf\s*\(")

# The internal tag namespace: bit 62, minted by next_internal_tag. Any other
# file computing tags this large would collide with collective traffic.
COMM_TAG_PATTERN = re.compile(r"<<\s*62\b|next_internal_tag")
COMM_TAG_ALLOWED = {"src/comm/communicator.cpp", "src/comm/communicator.hpp"}

# ISA knowledge is confined to the SIMD wrapper: everything else writes
# width-generic vec<W> code (tensor/simd.hpp) and is compiled at whatever
# width cmake/LtfbSimd.cmake selected. A raw __AVX2__ branch elsewhere
# would silently diverge between build configurations.
ISA_PATTERN = re.compile(
    r"__AVX\w*__|__SSE\w*__|__ARM_NEON\w*|__aarch64__"
    r"|\bLTFB_SIMD_WIDTH\b|immintrin\.h|arm_neon\.h")
ISA_ALLOWED = {"src/tensor/simd.hpp"}

# Public entry points of the concurrency substrate that must validate
# arguments/state in their own body. Maps file -> list of (display name,
# definition token). A token matches `Token (...) {` definitions; every
# definition of the token in the file is checked.
ENTRY_CHECK_MANIFEST = {
    "src/comm/communicator.cpp": [
        ("Communicator::world_rank_of", "Communicator::world_rank_of"),
        ("Communicator::send", "Communicator::send"),
        ("Communicator::recv", "Communicator::recv"),
        ("Communicator::sendrecv", "Communicator::sendrecv"),
        ("Communicator::take_payload", "Communicator::take_payload"),
        ("Communicator::broadcast", "Communicator::broadcast"),
        ("Communicator::reduce", "Communicator::reduce"),
        ("Communicator::gather", "Communicator::gather"),
        ("Communicator::scatter", "Communicator::scatter"),
        ("Communicator::split", "Communicator::split"),
        ("Communicator::shrink", "Communicator::shrink"),
        ("Request::test", "Request::test"),
        ("Request::wait", "Request::wait"),
        ("World::World", "World::World"),
        ("World::communicator", "World::communicator"),
        ("World::spawn_processes", "World::spawn_processes"),
    ],
    "src/comm/serializer.cpp": [
        ("Deserializer::consume", "Deserializer::consume"),
        ("Deserializer::expect_end", "Deserializer::expect_end"),
        ("Deserializer::unpack_floats", "Deserializer::unpack_floats"),
    ],
    "src/comm/wire.cpp": [
        ("wire::encode_frame", "encode_frame"),
        ("wire::decode_frame_body", "decode_frame_body"),
    ],
    "src/comm/socket_backend.cpp": [
        ("spawn_socket_mesh", "spawn_socket_mesh"),
    ],
    "src/comm/fault.cpp": [
        ("FaultSchedule::parse", "FaultSchedule::parse"),
        ("FaultSchedule::random_kill", "FaultSchedule::random_kill"),
    ],
    "src/datastore/data_store.cpp": [
        ("DataStore::DataStore", "DataStore::DataStore"),
        ("DataStore::preload", "DataStore::preload"),
        ("DataStore::fetch", "DataStore::fetch"),
        ("DataStore::begin_fetch", "DataStore::begin_fetch"),
        ("DataStore::collect_fetch", "DataStore::collect_fetch"),
        ("DataStore::build_directory", "DataStore::build_directory"),
        ("DataStore::stats", "DataStore::stats"),
        ("DataStore::insert_local", "DataStore::insert_local"),
        ("DataStore::repair_directory", "DataStore::repair_directory"),
    ],
    "src/core/population_checkpoint.cpp": [
        ("save_population_checkpoint", "save_population_checkpoint"),
        ("load_population_checkpoint", "load_population_checkpoint"),
        ("decode_population_checkpoint", "decode_population_checkpoint"),
    ],
    "src/core/ltfb_comm.cpp": [
        ("run_distributed_ltfb", "run_distributed_ltfb"),
    ],
    "src/core/scheduler.cpp": [
        ("ElasticScheduler::ElasticScheduler",
         "ElasticScheduler::ElasticScheduler"),
        ("ElasticScheduler::issue_boundary", "ElasticScheduler::issue_boundary"),
        ("SchedulerClient::SchedulerClient", "SchedulerClient::SchedulerClient"),
        ("SchedulerClient::ack", "SchedulerClient::ack"),
        ("run_elastic_ltfb", "run_elastic_ltfb"),
    ],
    "src/util/thread_pool.hpp": [
        ("ThreadPool::submit", "submit"),
    ],
    "src/util/compute_pool.cpp": [
        ("ComputePool::resize", "ComputePool::resize"),
        ("ComputePool::run_tasks", "ComputePool::run_tasks"),
        ("ComputePool::parallel_ranges", "ComputePool::parallel_ranges"),
        ("ComputePool::env_threads", "ComputePool::env_threads"),
    ],
    "src/nn/parallel.cpp": [
        ("GradientBucketer::GradientBucketer",
         "GradientBucketer::GradientBucketer"),
        ("GradientBucketer::bucket_bytes_from_env",
         "GradientBucketer::bucket_bytes_from_env"),
        ("GradientBucketer::wire_dtype_from_env",
         "GradientBucketer::wire_dtype_from_env"),
        ("GradientBucketer::launch", "GradientBucketer::launch"),
        ("GradientBucketer::apply_completed_step",
         "GradientBucketer::apply_completed_step"),
        ("GradientBucketer::finish", "GradientBucketer::finish"),
    ],
    "src/nn/optimizer.cpp": [
        ("LossScaleController::LossScaleController",
         "LossScaleController::LossScaleController"),
        ("LossScalingOptimizer::LossScalingOptimizer",
         "LossScalingOptimizer::LossScalingOptimizer"),
        ("make_loss_scaling_factory", "make_loss_scaling_factory"),
    ],
    "src/nn/checkpoint.cpp": [
        ("nn::save_weights", "save_weights"),
        ("nn::load_weights", "load_weights"),
        ("nn::half_kind", "half_kind"),
    ],
    "src/tensor/half.hpp": [
        ("tensor::encode_half", "encode_half"),
        ("tensor::decode_half", "decode_half"),
    ],
    "src/tensor/tensor.hpp": [
        ("Tensor::at", "at"),
        ("Tensor::row", "row"),
        ("Tensor::operator[]", "operator[]"),
    ],
    "src/tensor/tensor.cpp": [
        ("Tensor::reshape", "Tensor::reshape"),
    ],
    "src/telemetry/telemetry.cpp": [
        ("Registry::counter", "Registry::counter"),
        ("Registry::gauge", "Registry::gauge"),
        ("Registry::timer", "Registry::timer"),
        ("Registry::record_sim_span", "Registry::record_sim_span"),
        ("telemetry::bind_rank", "bind_rank"),
    ],
    "src/telemetry/flight_recorder.cpp": [
        ("flight::start_watchdog", "start_watchdog"),
        ("flight::set_process_rank", "set_process_rank"),
        ("flight::set_postmortem_dir", "set_postmortem_dir"),
    ],
    "src/core/metrics_aggregator.cpp": [
        ("ClusterMetricsAggregator::ClusterMetricsAggregator",
         "ClusterMetricsAggregator::ClusterMetricsAggregator"),
    ],
}

# The stopwatch shim is compatibility-only: new code names the telemetry
# clock directly. Tests are exempt (they assert the shim aliases correctly);
# the shim header itself is the one allowed definition site.
STOPWATCH_TOKEN = re.compile(r"\butil::Stopwatch\b")
STOPWATCH_INCLUDE = re.compile(
    r'^[ \t]*#[ \t]*include[ \t]+"util/stopwatch\.hpp"', re.MULTILINE)
STOPWATCH_ALLOWED = {"src/util/stopwatch.hpp"}

# Metric and span names are registered once and become JSON keys / Perfetto
# track labels; enforce the subsystem/verb convention at lint time so a typo
# never ships. Matches string literals passed to the telemetry macros and to
# Registry registration calls.
METRIC_NAME = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)+$")
METRIC_CALL = re.compile(
    r"(?:\bLTFB_SPAN|\bLTFB_COUNTER_ADD|\bLTFB_GAUGE_SET"
    r"|\bLTFB_TIMER_RECORD|\bLTFB_TIMED_SCOPE"
    r"|\.\s*counter|\.\s*gauge|\.\s*timer|\brecord_sim_span)"
    r"\s*\(\s*\"([^\"]*)\"")

VALIDATION_KEYWORDS = re.compile(
    r"\bLTFB_CHECK\b|\bLTFB_CHECK_MSG\b|\bLTFB_ASSERT\b|\bthrow\b"
    r"|\bthrow_format\b|\bcheck_no_fetch_in_flight\b")

# A body that is a single delegation statement — `{ other(args); }` or
# `{ return other(args); }` — inherits the callee's validation.
DELEGATION_BODY = re.compile(
    r"^\{\s*(return\s+)?[\w:]+\s*\([^;{}]*\)\s*;\s*\}$")

# A delegating constructor — `: Type(args) {}` — likewise inherits the
# target constructor's validation. Matched against the text between the
# parameter list's closing paren and the (empty) body.
DELEGATING_CTOR = re.compile(r"^\s*:\s*[\w:]+\s*\(.*\)\s*$", re.DOTALL)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks out comments and (unless keep_strings) string/char literals,
    preserving offsets and newlines so line numbers in findings stay
    accurate. A single quote directly after an identifier character is a
    C++14 digit separator (0x5bf0'3635ull), not a char literal."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        prev = text[i - 1] if i > 0 else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == "'" and (prev.isalnum() or prev == "_"):
            i += 1  # digit separator inside a numeric literal
        elif c in "\"'":
            quote = c
            if not keep_strings:
                out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if not keep_strings:
                        out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n" and not keep_strings:
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n" and not keep_strings:
                    out[i] = " "
                i += 1
            if i < n:
                if not keep_strings:
                    out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def iter_sources(root: pathlib.Path, subdirs):
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SRC_EXTS and path.is_file():
                yield path


def check_banned_calls(rel: str, stripped: str, findings):
    if not rel.startswith("src/"):
        return
    for pattern, rule, message in BANNED_PATTERNS:
        for m in pattern.finditer(stripped):
            findings.append(Finding(rel, line_of(stripped, m.start()), rule,
                                    message))


def check_stdout(rel: str, stripped: str, findings):
    if not rel.startswith("src/") or rel in STDOUT_ALLOWED:
        return
    for m in STDOUT_PATTERN.finditer(stripped):
        findings.append(Finding(
            rel, line_of(stripped, m.start()), "stdout",
            "library code must not write to stdout/stderr directly; route "
            "through util/logging (or util/table for bench tables)"))


def check_comm_tags(rel: str, stripped: str, findings):
    if not rel.startswith("src/") or rel in COMM_TAG_ALLOWED:
        return
    for m in COMM_TAG_PATTERN.finditer(stripped):
        findings.append(Finding(
            rel, line_of(stripped, m.start()), "comm-tags",
            "the internal collective tag namespace (bit 62 / "
            "next_internal_tag) is reserved to src/comm/communicator.cpp"))


def check_isa_dispatch(rel: str, stripped: str, findings):
    if rel in ISA_ALLOWED:
        return
    for m in ISA_PATTERN.finditer(stripped):
        findings.append(Finding(
            rel, line_of(stripped, m.start()), "isa-dispatch",
            "raw ISA conditionals are reserved to src/tensor/simd.hpp; "
            "write width-generic code against tensor::simd::vec "
            "(kNativeWidth, main_loop_bound) instead"))


INCLUDE_PATTERN = re.compile(r'^[ \t]*#[ \t]*include[ \t]+([<"][^>"]+[>"])',
                             re.MULTILINE)

# Project headers live under src/<lib>/; their include form is the quoted
# src/-relative path.
PROJECT_INCLUDE_DIRS = ("util/", "tensor/", "comm/", "nn/", "jag/", "data/",
                        "datastore/", "gan/", "workflow/", "core/",
                        "simulator/", "perf/", "telemetry/")


def check_include_hygiene(root: pathlib.Path, rel: str, raw: str, stripped,
                          findings):
    if rel.endswith(".hpp") and "#pragma once" not in raw:
        findings.append(Finding(rel, 1, "include-hygiene",
                                "header is missing #pragma once"))
    includes = list(INCLUDE_PATTERN.finditer(stripped))
    for m in includes:
        spec = m.group(1)
        target = spec[1:-1]
        line = line_of(stripped, m.start())
        if target.startswith("../") or "/../" in target:
            findings.append(Finding(
                rel, line, "include-hygiene",
                f'include "{target}" must be a src/-relative path, not a '
                "parent-relative one"))
        if spec.startswith("<") and target.startswith(PROJECT_INCLUDE_DIRS):
            findings.append(Finding(
                rel, line, "include-hygiene",
                f"project header <{target}> must use the quoted include "
                "form"))
        if spec.startswith('"'):
            here = (root / rel).parent
            if not (root / "src" / target).is_file() and \
               not (here / target).is_file():
                findings.append(Finding(
                    rel, line, "include-hygiene",
                    f'quoted include "{target}" resolves neither under src/ '
                    "nor next to the including file (system headers use "
                    "<...>)"))
    # A library .cpp must include its own header first: that proves every
    # header compiles stand-alone (no hidden include-order dependencies).
    if rel.startswith("src/") and rel.endswith(".cpp") and includes:
        own = rel[len("src/"):-len(".cpp")] + ".hpp"
        if (root / "src" / own).is_file():
            first = includes[0].group(1)[1:-1]
            if first != own:
                findings.append(Finding(
                    rel, line_of(stripped, includes[0].start()),
                    "include-hygiene",
                    f'first include must be the file\'s own header "{own}" '
                    f'(found "{first}")'))


def find_function_bodies(stripped: str, token: str):
    """Yields (offset, header, body) for each definition
    `token (...) header {body}` — `header` is the text between the
    parameter list's closing paren and the body opener (constructor
    init-list, noexcept, trailing return type...).

    Works on comment/string-stripped text. Declarations (ending in `;`) are
    skipped. Constructor init-lists are handled by scanning from the
    argument list's closing paren to the first `{` or `;`.
    """
    for m in re.finditer(re.escape(token) + r"\s*\(", stripped):
        i = m.end() - 1  # at '('
        depth = 0
        n = len(stripped)
        while i < n:
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        # Scan forward to the body opener or a declaration terminator. An
        # init-list's member initialisers contain (...) groups; skip them.
        j = i + 1
        while j < n and stripped[j] != "{" and stripped[j] != ";":
            if stripped[j] == "(":
                d = 1
                j += 1
                while j < n and d:
                    if stripped[j] == "(":
                        d += 1
                    elif stripped[j] == ")":
                        d -= 1
                    j += 1
                continue
            j += 1
        if j >= n or stripped[j] == ";":
            continue
        # Brace-match the body.
        k = j
        depth = 0
        while k < n:
            if stripped[k] == "{":
                depth += 1
            elif stripped[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        yield m.start(), stripped[i + 1:j], stripped[j:k + 1]


def check_telemetry(rel: str, stripped: str, code_with_strings: str,
                    findings):
    if not rel.startswith(("src/", "bench/", "examples/")):
        return
    if rel not in STOPWATCH_ALLOWED:
        for m in STOPWATCH_TOKEN.finditer(stripped):
            findings.append(Finding(
                rel, line_of(stripped, m.start()), "telemetry",
                "util::Stopwatch is a compatibility shim; new code uses "
                "ltfb::telemetry::Stopwatch (or a telemetry timer/span)"))
        for m in STOPWATCH_INCLUDE.finditer(code_with_strings):
            findings.append(Finding(
                rel, line_of(code_with_strings, m.start()), "telemetry",
                'include "telemetry/telemetry.hpp" instead of the '
                '"util/stopwatch.hpp" shim'))
    for m in METRIC_CALL.finditer(code_with_strings):
        name = m.group(1)
        if not METRIC_NAME.match(name):
            findings.append(Finding(
                rel, line_of(code_with_strings, m.start()), "telemetry",
                f'metric name "{name}" violates the subsystem/verb '
                "convention ([a-z0-9_]+ segments joined by '/')"))


# A hand-rolled GEMM: the innermost of >= 3 nested for loops accumulating a
# product of two INDEXED operands (`a[..] * b[..]` or `a.at(..) * b.at(..)`).
# Requiring indexed-times-indexed keeps scalar accumulations (distance sums,
# dot products over fixed-size points) out of scope. Only src/tensor/ may
# contain one (the tiled kernel and its naive conformance reference).
FOR_LOOP = re.compile(r"\bfor\s*\(")
MAC_STATEMENT = re.compile(
    r"\+=[^;{}]*(?:\]\s*\*\s*[\w.>:-]*\[|\)\s*\*\s*[\w.>:-]*\()")


def _for_loop_extents(stripped: str):
    """Yields (for_offset, body_start, body_end) for every for loop. The
    body of a braced loop is its block; an unbraced loop's body runs to the
    statement-terminating ';' (so `for(..) for(..) for(..) s;` nests)."""
    n = len(stripped)
    for m in FOR_LOOP.finditer(stripped):
        i = m.end() - 1
        depth = 0
        while i < n:
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        j = i + 1
        while j < n and stripped[j].isspace():
            j += 1
        if j >= n:
            continue
        if stripped[j] == "{":
            k = j
            depth = 0
            while k < n:
                if stripped[k] == "{":
                    depth += 1
                elif stripped[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            yield m.start(), j, min(k + 1, n)
        else:
            k = j
            depth = 0
            while k < n:
                c = stripped[k]
                if c in "({":
                    depth += 1
                elif c in ")}":
                    depth -= 1
                elif c == ";" and depth <= 0:
                    break
                k += 1
            yield m.start(), j, min(k + 1, n)


def check_matmul_nest(rel: str, stripped: str, findings):
    if not rel.startswith("src/") or rel.startswith("src/tensor/"):
        return
    extents = list(_for_loop_extents(stripped))
    for start, body_start, body_end in extents:
        body = stripped[body_start:body_end]
        # Flag only the innermost loop of a nest: it holds the MAC statement
        # and no further for loop, so each nest reports once.
        if FOR_LOOP.search(body):
            continue
        if not MAC_STATEMENT.search(body):
            continue
        ancestors = sum(1 for s, b, e in extents
                        if s != start and b <= start < e)
        if ancestors >= 2:
            findings.append(Finding(
                rel, line_of(stripped, start), "matmul-nest",
                "raw triple-nested multiply-accumulate loop: use "
                "tensor::gemm/matmul (register-tiled, pool-threaded, "
                "conformance-tested) instead of a hand-rolled kernel"))


def check_entry_points(rel: str, stripped: str, findings):
    manifest = ENTRY_CHECK_MANIFEST.get(rel)
    if not manifest:
        return
    for display, token in manifest:
        bodies = list(find_function_bodies(stripped, token))
        if not bodies:
            findings.append(Finding(
                rel, 1, "entry-checks",
                f"manifest entry point {display} not found — update "
                "tools/ltfb_lint.py if it moved or was renamed"))
            continue
        for offset, header, body in bodies:
            if VALIDATION_KEYWORDS.search(body):
                continue
            if DELEGATION_BODY.match(body.strip()):
                continue  # one-line forwarder to a checked overload
            if (re.fullmatch(r"\{\s*\}", body.strip()) and
                    DELEGATING_CTOR.match(header)):
                continue  # delegating constructor: target validates
            findings.append(Finding(
                rel, line_of(stripped, offset), "entry-checks",
                f"public entry point {display} must validate its "
                "arguments/state (LTFB_CHECK / LTFB_ASSERT / throw)"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--list", action="store_true",
                        help="print checked files and exit")
    args = parser.parse_args()
    root = args.root.resolve()

    findings: list[Finding] = []
    checked = 0
    for path in iter_sources(root, ["src", "tests", "bench", "examples"]):
        rel = path.relative_to(root).as_posix()
        if args.list:
            print(rel)
            continue
        raw = path.read_text(encoding="utf-8")
        stripped = strip_comments_and_strings(raw)
        # Include directives carry their paths in string literals, so the
        # hygiene pass works on comment-only stripped text.
        code_with_strings = strip_comments_and_strings(raw, keep_strings=True)
        checked += 1
        # Each check appends to a per-file list so one file's report comes
        # out in line order (not grouped by check) and duplicate findings
        # from overlapping checks collapse to one line.
        file_findings: list[Finding] = []
        check_banned_calls(rel, stripped, file_findings)
        check_stdout(rel, stripped, file_findings)
        check_comm_tags(rel, stripped, file_findings)
        check_include_hygiene(root, rel, raw, code_with_strings, file_findings)
        check_telemetry(rel, stripped, code_with_strings, file_findings)
        check_isa_dispatch(rel, code_with_strings, file_findings)
        check_matmul_nest(rel, stripped, file_findings)
        check_entry_points(rel, stripped, file_findings)
        unique = {(f.line, f.rule, f.message): f for f in file_findings}
        findings.extend(sorted(unique.values(),
                               key=lambda f: (f.line, f.rule, f.message)))

    if args.list:
        return 0
    if checked == 0:
        # A mistyped --root must not green-light the tree in CI.
        print(f"ltfb_lint: error: no sources found under {root}", file=sys.stderr)
        return 126
    for finding in findings:
        print(finding)
    print(f"ltfb_lint: {checked} files checked, {len(findings)} finding(s)")
    return min(len(findings), 125)


if __name__ == "__main__":
    sys.exit(main())
