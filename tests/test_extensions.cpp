// Tests for the extension features: the classic (non-GAN) LTFB path with
// softmax classification, weight checkpointing, and the data store's
// nonblocking background-thread prefetch.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>

#include "comm/communicator.hpp"
#include "core/classic_trainer.hpp"
#include "core/ltfb.hpp"
#include "core/population.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"
#include "gan/cyclegan.hpp"
#include "nn/checkpoint.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;

// ---- softmax cross-entropy --------------------------------------------------

TEST(SoftmaxCe, UniformLogitsGiveLogClasses) {
  tensor::Tensor logits(2, 4);  // all zeros
  const std::vector<int> labels{0, 3};
  EXPECT_NEAR(nn::softmax_cross_entropy(logits, labels, nullptr),
              std::log(4.0), 1e-9);
}

TEST(SoftmaxCe, ConfidentCorrectIsNearZero) {
  tensor::Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  const std::vector<int> labels{0};
  EXPECT_NEAR(nn::softmax_cross_entropy(logits, labels, nullptr), 0.0, 1e-6);
}

TEST(SoftmaxCe, GradientSumsToZeroPerRow) {
  util::Rng rng(3);
  tensor::Tensor logits(4, 5);
  for (auto& v : logits.data()) v = static_cast<float>(rng.uniform(-2, 2));
  const std::vector<int> labels{0, 1, 2, 3};
  tensor::Tensor grad;
  nn::softmax_cross_entropy(logits, labels, &grad);
  for (std::size_t r = 0; r < 4; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) row_sum += grad.at(r, c);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCe, FiniteDifferenceGradient) {
  util::Rng rng(4);
  tensor::Tensor logits(3, 4);
  for (auto& v : logits.data()) v = static_cast<float>(rng.uniform(-1, 1));
  const std::vector<int> labels{1, 0, 3};
  tensor::Tensor grad;
  nn::softmax_cross_entropy(logits, labels, &grad);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double up = nn::softmax_cross_entropy(logits, labels, nullptr);
    logits[i] = saved - eps;
    const double down = nn::softmax_cross_entropy(logits, labels, nullptr);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (up - down) / (2.0 * eps), 1e-3);
  }
}

TEST(SoftmaxCe, StableAtExtremeLogits) {
  tensor::Tensor logits({1, 3}, {1000.0f, -1000.0f, 0.0f});
  const std::vector<int> labels{0};
  const double loss = nn::softmax_cross_entropy(logits, labels, nullptr);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
}

TEST(SoftmaxCe, OutOfRangeLabelThrows) {
  tensor::Tensor logits(1, 3);
  EXPECT_THROW(
      nn::softmax_cross_entropy(logits, std::vector<int>{3}, nullptr),
      InvalidArgument);
}

TEST(Accuracy, CountsArgmaxMatches) {
  tensor::Tensor logits({2, 3}, {3, 1, 2, 0, 5, 1});
  EXPECT_DOUBLE_EQ(
      nn::classification_accuracy(logits, std::vector<int>{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(
      nn::classification_accuracy(logits, std::vector<int>{1, 1}), 0.5);
}

// ---- classic LTFB -------------------------------------------------------------

struct ClassicFixture {
  data::Dataset dataset;
  data::SplitIndices splits;
  SupervisedData train, holdout, validation;

  ClassicFixture() {
    jag::JagConfig config;
    config.image_size = 4;
    config.num_channels = 1;
    const jag::JagModel model(config);
    dataset = data::generate_jag_dataset(model, 600, 501);
    const auto norms = data::fit_normalizers(dataset);
    data::normalize_dataset(dataset, norms);
    splits = data::split_dataset(dataset.size(), 0.6, 0.2, 502);
    train = make_ignition_task(dataset, splits.train);
    holdout = make_ignition_task(dataset, splits.tournament);
    validation = make_ignition_task(dataset, splits.validation);
  }

  ClassicModelConfig model_config() const {
    ClassicModelConfig config;
    config.input_width = train.features.cols();
    config.hidden = {24, 12};
    config.output_width = 3;
    config.learning_rate = 3e-3f;
    return config;
  }
};

TEST(IgnitionTask, LabelsSpanRegimes) {
  ClassicFixture fx;
  std::array<int, 3> counts{0, 0, 0};
  for (const int label : fx.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LE(label, 2);
    ++counts[static_cast<std::size_t>(label)];
  }
  // The ignition cliff puts mass in the failed and ignited classes.
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(IgnitionTask, FeatureWidthIsOutputBundle) {
  ClassicFixture fx;
  EXPECT_EQ(fx.train.features.cols(), fx.dataset.schema().output_width());
  EXPECT_EQ(fx.train.size(), fx.splits.train.size());
}

TEST(ClassicTrainer, LearnsIgnitionRegime) {
  ClassicFixture fx;
  ClassicTrainer trainer(0, fx.model_config(), &fx.train, &fx.holdout, 32,
                         503);
  const double before = trainer.accuracy(fx.validation);
  trainer.train_steps(300);
  const double after = trainer.accuracy(fx.validation);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.7);  // three-class task; chance ~ majority class
  EXPECT_EQ(trainer.steps_taken(), 300u);
}

TEST(ClassicTrainer, RegressionTaskSupported) {
  ClassicFixture fx;
  // Regress the (normalized) scalar outputs from themselves via a
  // bottleneck — loss must fall.
  SupervisedData regression;
  regression.features = fx.train.features;
  regression.targets = fx.train.features;
  ClassicModelConfig config = fx.model_config();
  config.task = ClassicTask::Regression;
  config.output_width = regression.features.cols();
  ClassicTrainer trainer(0, config, &regression, &regression, 32, 504);
  const double before = trainer.loss_on(regression);
  trainer.train_steps(200);
  EXPECT_LT(trainer.loss_on(regression), before);
}

TEST(ClassicLtfb, RunsAndImproves) {
  ClassicFixture fx;
  std::vector<std::unique_ptr<ClassicTrainer>> trainers;
  // Partition the training set into 3 silos.
  std::vector<SupervisedData> silos;
  std::vector<std::size_t> all(fx.splits.train.size());
  std::iota(all.begin(), all.end(), 0);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto part = data::partition_indices(fx.splits.train, 3, i);
    silos.push_back(make_ignition_task(fx.dataset, part));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    trainers.push_back(std::make_unique<ClassicTrainer>(
        static_cast<int>(i), fx.model_config(), &silos[i], &fx.holdout, 16,
        505 + i));
  }
  ClassicLtfbConfig config;
  config.steps_per_round = 30;
  config.rounds = 6;
  ClassicLtfbDriver driver(std::move(trainers), config);

  const double before = driver.trainer(0).accuracy(fx.validation);
  driver.run();
  EXPECT_GT(driver.tournaments_played(), 0u);
  const std::size_t best = driver.best_trainer(fx.validation);
  const double after = driver.trainer(best).accuracy(fx.validation);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.7);
}

TEST(ClassicLtfb, FullModelExchangeSemantics) {
  // After a duel where one side adopts, the two models are identical.
  ClassicFixture fx;
  std::vector<std::unique_ptr<ClassicTrainer>> trainers;
  for (std::size_t i = 0; i < 2; ++i) {
    trainers.push_back(std::make_unique<ClassicTrainer>(
        static_cast<int>(i), fx.model_config(), &fx.train, &fx.holdout, 16,
        600 + i));
  }
  ClassicLtfbConfig config;
  config.steps_per_round = 5;
  config.rounds = 1;
  ClassicLtfbDriver driver(std::move(trainers), config);
  driver.run_round();
  // Same hold-out on both sides -> the duel has one winner; both trainers
  // end up with that winner's weights.
  EXPECT_EQ(driver.trainer(0).model().flatten_weights(),
            driver.trainer(1).model().flatten_weights());
}

// ---- checkpointing -------------------------------------------------------------

TEST(Checkpoint, WeightsRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "ltfb_ckpt.bin";
  const std::vector<float> weights{1.5f, -2.25f, 3.75f};
  nn::save_weights(path, "my-model", weights);
  std::string name;
  EXPECT_EQ(nn::load_weights(path, &name), weights);
  EXPECT_EQ(name, "my-model");
}

TEST(Checkpoint, ModelRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_model.bin";
  nn::Model a("net", 7);
  const auto in = a.add_input(4);
  a.add_dense(in, 8, nn::ActivationKind::Tanh);
  nn::save_model(path, a);

  nn::Model b("net", 8);  // different seed -> different weights
  const auto in_b = b.add_input(4);
  b.add_dense(in_b, 8, nn::ActivationKind::Tanh);
  ASSERT_NE(a.flatten_weights(), b.flatten_weights());
  nn::load_model(path, b);
  EXPECT_EQ(a.flatten_weights(), b.flatten_weights());
}

TEST(Checkpoint, SizeMismatchThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_bad.bin";
  nn::save_weights(path, "tiny", std::vector<float>{1.0f});
  nn::Model model("net", 9);
  const auto in = model.add_input(2);
  model.add_linear(in, 2);
  EXPECT_THROW(nn::load_model(path, model), InvalidArgument);
}

TEST(Checkpoint, GarbageFileRejected) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(nn::load_weights(path), FormatError);
}

TEST(Checkpoint, MissingFileRejected) {
  EXPECT_THROW(nn::load_weights("/nonexistent/ckpt.bin"), FormatError);
}

TEST(Checkpoint, CycleGanRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_gan.bin";
  gan::CycleGanConfig config;
  config.image_width = 12;
  config.latent_width = 4;
  config.encoder_hidden = {8};
  config.decoder_hidden = {8};
  config.forward_hidden = {6};
  config.inverse_hidden = {4};
  config.discriminator_hidden = {4};
  gan::CycleGan a(config, 11);
  gan::CycleGan b(config, 12);
  a.save_checkpoint(path);
  b.load_checkpoint(path);
  EXPECT_EQ(a.generator_weights(), b.generator_weights());
  EXPECT_EQ(a.discriminator_weights(), b.discriminator_weights());
}

// ---- history export ------------------------------------------------------------------

TEST(HistoryExport, WritesOneRowPerDuelingTrainer) {
  std::vector<RoundRecord> history(2);
  history[0].round = 0;
  history[0].stats = {{0, 1, 0.5, 0.4, true, false},
                      {1, 0, 0.4, 0.5, false, false}};
  history[1].round = 1;
  history[1].stats = {{0, -1, 0.0, 0.0, false, false}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "ltfb_history.csv").string();
  ASSERT_TRUE(export_history_csv(history, path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "round,event,trainer,partner,own_score,partner_score,adopted,"
            "partner_failed,round_wall_s,max_rank_gap_s");
  std::getline(in, line);
  EXPECT_EQ(line, "0,round,0,1,0.500000,0.400000,1,0,0.000000,0.000000");
  int rows = 1;
  while (std::getline(in, line) && !line.empty()) ++rows;
  EXPECT_EQ(rows, 3);
}

TEST(HistoryExport, ChurnRoundsEmitExplicitEventRows) {
  // A population resize mid-run must surface as `joined`/`left` marker
  // rows, not as silently misaligned per-trainer columns.
  std::vector<RoundRecord> history(2);
  history[0].round = 0;
  history[0].stats = {{0, 1, 0.5, 0.4, true, false},
                      {1, 0, 0.4, 0.5, false, false}};
  history[1].round = 1;
  history[1].joined = {2};
  history[1].left = {1};
  history[1].stats = {{0, 2, 0.3, 0.6, false, false},
                      {2, 0, 0.6, 0.3, true, false}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "ltfb_history_churn.csv")
          .string();
  ASSERT_TRUE(export_history_csv(history, path));
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line) && !line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u);  // header + 2 stats + 2 events + 2 stats
  EXPECT_EQ(lines[3], "1,joined,2,,,,,,,");
  EXPECT_EQ(lines[4], "1,left,1,,,,,,,");
  EXPECT_EQ(lines[5].rfind("1,round,0,2,", 0), 0u);
}

// ---- PBT-style hyperparameter exploration -------------------------------------------

TEST(Pbt, LearningRateSpreadDiversifiesPopulation) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, 300, 700);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 701);

  PopulationConfig config;
  config.num_trainers = 4;
  config.batch_size = 16;
  config.model.image_width = jag_config.image_features();
  config.model.latent_width = 8;
  config.model.encoder_hidden = {12};
  config.model.decoder_hidden = {12};
  config.model.forward_hidden = {8};
  config.model.inverse_hidden = {6};
  config.model.discriminator_hidden = {6};
  config.lr_spread = 0.5f;
  const auto trainers = build_population(dataset, splits, config);
  std::set<float> rates;
  for (const auto& trainer : trainers) {
    const float lr = trainer->model().learning_rate();
    EXPECT_GT(lr, config.model.learning_rate / 1.6f);
    EXPECT_LT(lr, config.model.learning_rate * 1.6f);
    rates.insert(lr);
  }
  EXPECT_GT(rates.size(), 1u);  // genuinely diverse
}

TEST(Pbt, AdoptionInheritsPerturbedLearningRate) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, 300, 702);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 703);

  PopulationConfig population;
  population.num_trainers = 2;
  population.batch_size = 16;
  population.model.image_width = jag_config.image_features();
  population.model.latent_width = 8;
  population.model.encoder_hidden = {12};
  population.model.decoder_hidden = {12};
  population.model.forward_hidden = {8};
  population.model.inverse_hidden = {6};
  population.model.discriminator_hidden = {6};
  population.lr_spread = 0.5f;

  LtfbConfig ltfb;
  ltfb.steps_per_round = 3;
  ltfb.rounds = 4;
  ltfb.lr_perturbation = 0.2f;

  LocalLtfbDriver driver(build_population(dataset, splits, population),
                         ltfb);
  const float lr0_before = driver.trainer(0).model().learning_rate();
  const float lr1_before = driver.trainer(1).model().learning_rate();
  driver.run();
  // Some adoption happened across 4 rounds (near-certain with diverse
  // seeds); the adopter's learning rate moved.
  bool any_adoption = false;
  for (const auto& record : driver.history()) {
    for (const auto& stat : record.stats) {
      any_adoption |= stat.adopted_partner;
    }
  }
  if (any_adoption) {
    const bool lr_changed =
        driver.trainer(0).model().learning_rate() != lr0_before ||
        driver.trainer(1).model().learning_rate() != lr1_before;
    EXPECT_TRUE(lr_changed);
  }
}

TEST(Pbt, SetLearningRatePropagatesToOptimizers) {
  gan::CycleGanConfig config;
  config.image_width = 12;
  config.latent_width = 4;
  config.encoder_hidden = {8};
  config.decoder_hidden = {8};
  config.forward_hidden = {6};
  config.inverse_hidden = {4};
  config.discriminator_hidden = {4};
  gan::CycleGan model(config, 30);
  model.set_learning_rate(5e-4f);
  EXPECT_FLOAT_EQ(model.learning_rate(), 5e-4f);
  for (nn::Model* component : model.components()) {
    for (nn::Weights* weights : component->weights()) {
      ASSERT_NE(weights->optimizer(), nullptr);
      EXPECT_FLOAT_EQ(weights->optimizer()->learning_rate(), 5e-4f);
    }
  }
  EXPECT_THROW(model.set_learning_rate(0.0f), InvalidArgument);
}

// ---- prefetch ---------------------------------------------------------------------

TEST(Prefetch, OverlapsAndReturnsSameAsFetch) {
  // Build a small bundle set.
  const auto dir =
      std::filesystem::temp_directory_path() / "ltfb_prefetch_test";
  std::filesystem::remove_all(dir);
  data::SampleSchema schema;
  schema.input_width = 5;
  schema.scalar_width = 15;
  schema.image_width = 4;
  std::vector<data::Sample> samples;
  for (data::SampleId id = 0; id < 24; ++id) {
    data::Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, 1.0f);
    sample.images.assign(4, 2.0f);
    samples.push_back(std::move(sample));
  }
  const auto paths = data::write_bundle_set(dir, schema, samples, 4);
  datastore::BundleCatalog catalog(paths);

  comm::World::run(2, [&](comm::Communicator& comm) {
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded);
    store.preload();
    // Pipeline three "steps": prefetch batch i+1 while "computing" on i.
    std::vector<std::vector<data::SampleId>> wants = {
        {0, 13, 7}, {23, 1, 11}, {5, 18, 2}};
    std::vector<data::Sample> current = store.fetch(wants[0]);
    for (std::size_t step = 1; step < wants.size(); ++step) {
      store.begin_fetch(wants[step]);
      EXPECT_TRUE(store.fetch_in_flight());
      // ... mini-batch compute would happen here ...
      for (std::size_t i = 0; i < current.size(); ++i) {
        EXPECT_EQ(current[i].id, wants[step - 1][i]);
      }
      current = store.collect_fetch();
      EXPECT_FALSE(store.fetch_in_flight());
    }
    for (std::size_t i = 0; i < current.size(); ++i) {
      EXPECT_EQ(current[i].id, wants.back()[i]);
    }
  });
}

TEST(Prefetch, CollectWithoutBeginThrows) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ltfb_prefetch_bad";
  std::filesystem::remove_all(dir);
  data::SampleSchema schema;
  schema.input_width = 1;
  schema.scalar_width = 1;
  schema.image_width = 1;
  std::vector<data::Sample> samples(2);
  samples[0].id = 0;
  samples[1].id = 1;
  for (auto& sample : samples) {
    sample.input.assign(1, 0.0f);
    sample.scalars.assign(1, 0.0f);
    sample.images.assign(1, 0.0f);
  }
  const auto paths = data::write_bundle_set(dir, schema, samples, 1);
  datastore::BundleCatalog catalog(paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded);
    store.preload();
    EXPECT_THROW((void)store.collect_fetch(), InvalidArgument);
    store.begin_fetch({0});
    EXPECT_THROW(store.begin_fetch({1}), InvalidArgument);
    (void)store.collect_fetch();
  });
}

}  // namespace
