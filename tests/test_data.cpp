// Unit tests for src/data: sample packing, the bundle file format, dataset
// splits/partitions, normalization, and the mini-batch reader.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "data/bundle.hpp"
#include "data/data_reader.hpp"
#include "data/dataset.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::data;

SampleSchema small_schema() {
  SampleSchema schema;
  schema.input_width = 5;
  schema.scalar_width = 15;
  schema.image_width = 8;
  return schema;
}

Sample make_sample(SampleId id, const SampleSchema& schema) {
  Sample sample;
  sample.id = id;
  sample.input.resize(schema.input_width);
  sample.scalars.resize(schema.scalar_width);
  sample.images.resize(schema.image_width);
  for (std::size_t i = 0; i < sample.input.size(); ++i) {
    sample.input[i] = static_cast<float>(id * 100 + i);
  }
  for (std::size_t i = 0; i < sample.scalars.size(); ++i) {
    sample.scalars[i] = static_cast<float>(id) + 0.5f * static_cast<float>(i);
  }
  for (std::size_t i = 0; i < sample.images.size(); ++i) {
    sample.images[i] = static_cast<float>(id) * 0.25f;
  }
  return sample;
}

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / ("ltfb_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---- sample packing ------------------------------------------------------------

TEST(Sample, PackUnpackRoundTrip) {
  const auto schema = small_schema();
  const Sample original = make_sample(0xdeadbeefcafe1234ull % (1ull << 40),
                                      schema);
  const auto flat = pack_sample(original);
  EXPECT_EQ(flat.size(), 2 + schema.total_width());
  const Sample restored = unpack_sample(flat, schema);
  EXPECT_EQ(restored.id, original.id);
  EXPECT_EQ(restored.input, original.input);
  EXPECT_EQ(restored.scalars, original.scalars);
  EXPECT_EQ(restored.images, original.images);
}

TEST(Sample, PackPreservesLargeIds) {
  const auto schema = small_schema();
  Sample sample = make_sample(0, schema);
  sample.id = 0xffffffffffull;  // needs > 32 bits
  EXPECT_EQ(unpack_sample(pack_sample(sample), schema).id, sample.id);
}

TEST(Sample, UnpackWrongSizeThrows) {
  std::vector<float> flat(3);
  EXPECT_THROW(unpack_sample(flat, small_schema()), InvalidArgument);
}

TEST(Sample, ByteSizeAccounting) {
  const auto schema = small_schema();
  const Sample sample = make_sample(1, schema);
  EXPECT_EQ(sample.byte_size(), 8 + 4 * schema.total_width());
}

TEST(Sample, ConformsToSchema) {
  const auto schema = small_schema();
  Sample sample = make_sample(1, schema);
  EXPECT_TRUE(sample.conforms_to(schema));
  sample.images.pop_back();
  EXPECT_FALSE(sample.conforms_to(schema));
}

// ---- bundle files ---------------------------------------------------------------

TEST(Bundle, WriteReadRoundTrip) {
  const auto dir = temp_dir("bundle_rt");
  const auto schema = small_schema();
  const auto path = dir / "test.ltfb";
  {
    BundleWriter writer(path, schema);
    for (SampleId id = 0; id < 10; ++id) {
      writer.append(make_sample(id, schema));
    }
    EXPECT_EQ(writer.samples_written(), 10u);
    writer.close();
  }
  BundleReader reader(path);
  EXPECT_EQ(reader.sample_count(), 10u);
  EXPECT_EQ(reader.schema(), schema);
  const auto all = reader.read_all();
  ASSERT_EQ(all.size(), 10u);
  for (SampleId id = 0; id < 10; ++id) {
    EXPECT_EQ(all[id].id, id);
    EXPECT_EQ(all[id].input, make_sample(id, schema).input);
  }
}

TEST(Bundle, RandomAccessRead) {
  const auto dir = temp_dir("bundle_ra");
  const auto schema = small_schema();
  const auto path = dir / "test.ltfb";
  {
    BundleWriter writer(path, schema);
    for (SampleId id = 0; id < 20; ++id) {
      writer.append(make_sample(id, schema));
    }
  }
  BundleReader reader(path);
  // Out-of-order access must return the right records.
  for (const std::size_t index : {7u, 0u, 19u, 3u, 3u}) {
    const Sample sample = reader.read_sample(index);
    EXPECT_EQ(sample.id, index);
    EXPECT_EQ(sample.scalars, make_sample(index, schema).scalars);
  }
}

TEST(Bundle, ReadIndexOutOfRangeThrows) {
  const auto dir = temp_dir("bundle_oor");
  const auto schema = small_schema();
  const auto path = dir / "test.ltfb";
  {
    BundleWriter writer(path, schema);
    writer.append(make_sample(0, schema));
  }
  BundleReader reader(path);
  EXPECT_THROW(reader.read_sample(1), InvalidArgument);
}

TEST(Bundle, NonconformingSampleThrows) {
  const auto dir = temp_dir("bundle_bad");
  BundleWriter writer(dir / "test.ltfb", small_schema());
  Sample bad = make_sample(0, small_schema());
  bad.input.push_back(0.0f);
  EXPECT_THROW(writer.append(bad), InvalidArgument);
}

TEST(Bundle, BadMagicRejected) {
  const auto dir = temp_dir("bundle_magic");
  const auto path = dir / "garbage.ltfb";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a bundle file at all, not even close.....";
  }
  EXPECT_THROW(BundleReader reader(path), FormatError);
}

TEST(Bundle, MissingFileRejected) {
  EXPECT_THROW(BundleReader reader("/nonexistent/nope.ltfb"), FormatError);
}

TEST(Bundle, WriteBundleSetSplitsEvenly) {
  const auto dir = temp_dir("bundle_set");
  const auto schema = small_schema();
  std::vector<Sample> samples;
  for (SampleId id = 0; id < 25; ++id) {
    samples.push_back(make_sample(id, schema));
  }
  const auto paths = write_bundle_set(dir, schema, samples, 4);
  ASSERT_EQ(paths.size(), 4u);
  std::size_t total = 0;
  SampleId expected_id = 0;
  for (const auto& path : paths) {
    BundleReader reader(path);
    total += reader.sample_count();
    for (const auto& sample : reader.read_all()) {
      EXPECT_EQ(sample.id, expected_id++);  // sequential across files
    }
  }
  EXPECT_EQ(total, 25u);
}

// ---- dataset / splits -------------------------------------------------------------

Dataset make_dataset(std::size_t n) {
  const auto schema = small_schema();
  Dataset dataset(schema, {});
  for (SampleId id = 0; id < n; ++id) {
    dataset.add(make_sample(id, schema));
  }
  return dataset;
}

TEST(Dataset, AddEnforcesSchema) {
  Dataset dataset(small_schema(), {});
  Sample bad = make_sample(0, small_schema());
  bad.scalars.pop_back();
  EXPECT_THROW(dataset.add(bad), InvalidArgument);
}

TEST(Dataset, SubsetCopiesSelection) {
  const Dataset dataset = make_dataset(10);
  const Dataset sub = dataset.subset({3, 7});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.sample(0).id, 3u);
  EXPECT_EQ(sub.sample(1).id, 7u);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset dataset = make_dataset(3);
  EXPECT_THROW(dataset.subset({5}), InvalidArgument);
}

TEST(Dataset, ByteSize) {
  const Dataset dataset = make_dataset(4);
  EXPECT_EQ(dataset.byte_size(), 4 * (8 + 4 * small_schema().total_width()));
}

TEST(Split, DisjointAndCovering) {
  const auto split = split_dataset(100, 0.7, 0.1, 42);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.tournament.size(), 10u);
  EXPECT_EQ(split.validation.size(), 20u);
  std::set<std::size_t> all;
  for (const auto& part : {split.train, split.tournament, split.validation}) {
    for (const auto index : part) {
      EXPECT_TRUE(all.insert(index).second) << "duplicate index " << index;
      EXPECT_LT(index, 100u);
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(Split, DeterministicPerSeed) {
  const auto a = split_dataset(50, 0.6, 0.2, 7);
  const auto b = split_dataset(50, 0.6, 0.2, 7);
  const auto c = split_dataset(50, 0.6, 0.2, 8);
  EXPECT_EQ(a.train, b.train);
  EXPECT_NE(a.train, c.train);
}

TEST(Split, InvalidFractionsThrow) {
  EXPECT_THROW(split_dataset(10, 0.8, 0.3, 1), InvalidArgument);
}

TEST(Partition, BalancedAndDisjoint) {
  std::vector<std::size_t> indices(103);
  std::iota(indices.begin(), indices.end(), 0);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t part = 0; part < 4; ++part) {
    const auto piece = partition_indices(indices, 4, part);
    EXPECT_GE(piece.size(), 25u);
    EXPECT_LE(piece.size(), 26u);
    total += piece.size();
    for (const auto index : piece) {
      EXPECT_TRUE(seen.insert(index).second);
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(Partition, SinglePartIsIdentity) {
  const std::vector<std::size_t> indices{5, 6, 7};
  EXPECT_EQ(partition_indices(indices, 1, 0), indices);
}

TEST(Partition, InvalidPartThrows) {
  EXPECT_THROW(partition_indices({1, 2}, 2, 2), InvalidArgument);
}

// ---- jag dataset generation -------------------------------------------------------

TEST(JagDataset, GenerationDeterministic) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const Dataset a = generate_jag_dataset(model, 5, 11);
  const Dataset b = generate_jag_dataset(model, 5, 11);
  const Dataset c = generate_jag_dataset(model, 5, 12);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.sample(3).scalars, b.sample(3).scalars);
  EXPECT_NE(a.sample(3).scalars, c.sample(3).scalars);
}

TEST(JagDataset, IdsSequentialFromFirstId) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const Dataset dataset = generate_jag_dataset(model, 4, 1, /*first_id=*/100);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset.sample(i).id, 100 + i);
  }
}

TEST(JagDataset, ExplicitPointsRoundTrip) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const std::vector<std::array<double, jag::kNumInputs>> points{
      {0.1, 0.2, 0.3, 0.4, 0.5}, {0.9, 0.8, 0.7, 0.6, 0.5}};
  const Dataset dataset = generate_jag_dataset(model, points);
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_NEAR(dataset.sample(0).input[0], 0.1f, 1e-6f);
  EXPECT_NEAR(dataset.sample(1).input[4], 0.5f, 1e-6f);
}

// ---- normalization ------------------------------------------------------------------

TEST(Normalizer, FitTransformInverse) {
  Normalizer norm;
  // Two features: means (2, 10), stddevs (1, 0 -> clamped to 1).
  std::vector<float> rows{1, 10, 3, 10, 2, 10};
  norm.fit(rows, 2);
  EXPECT_NEAR(norm.mean()[0], 2.0f, 1e-6f);
  EXPECT_NEAR(norm.mean()[1], 10.0f, 1e-6f);
  EXPECT_NEAR(norm.stddev()[1], 1.0f, 1e-6f);  // zero-variance clamp

  std::vector<float> x{3, 10};
  norm.transform(x);
  EXPECT_NEAR(x[1], 0.0f, 1e-6f);
  norm.inverse(x);
  EXPECT_NEAR(x[0], 3.0f, 1e-5f);
  EXPECT_NEAR(x[1], 10.0f, 1e-5f);
}

TEST(Normalizer, TransformBeforeFitThrows) {
  Normalizer norm;
  std::vector<float> x{1.0f};
  EXPECT_THROW(norm.transform(x), InvalidArgument);
}

TEST(Normalizer, DatasetNormalizationZeroMeanUnitVar) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  Dataset dataset = generate_jag_dataset(model, 200, 3);
  const auto norms = fit_normalizers(dataset);
  normalize_dataset(dataset, norms);
  // Re-fit on the normalized data: means ~0, stddev ~1 for scalars.
  const auto refit = fit_normalizers(dataset);
  for (std::size_t c = 0; c < dataset.schema().scalar_width; ++c) {
    EXPECT_NEAR(refit.scalars.mean()[c], 0.0f, 1e-3f);
    EXPECT_NEAR(refit.scalars.stddev()[c], 1.0f, 1e-2f);
  }
}

// ---- mini-batch reader ---------------------------------------------------------------

TEST(Reader, BatchLayout) {
  const Dataset dataset = make_dataset(10);
  const Batch batch = make_batch(dataset, {2, 5});
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.inputs.rows(), 2u);
  EXPECT_EQ(batch.inputs.cols(), 5u);
  EXPECT_EQ(batch.scalars.cols(), 15u);
  EXPECT_EQ(batch.images.cols(), 8u);
  EXPECT_EQ(batch.outputs.cols(), 23u);
  EXPECT_EQ(batch.ids, (std::vector<SampleId>{2, 5}));
  // outputs = [scalars | images]
  EXPECT_FLOAT_EQ(batch.outputs.at(0, 0), batch.scalars.at(0, 0));
  EXPECT_FLOAT_EQ(batch.outputs.at(0, 15), batch.images.at(0, 0));
  EXPECT_FLOAT_EQ(batch.inputs.at(1, 3), dataset.sample(5).input[3]);
}

TEST(Reader, EpochCoversViewExactlyOnce) {
  const Dataset dataset = make_dataset(20);
  std::vector<std::size_t> view{0, 1, 2, 3, 4, 5, 6, 7};
  MiniBatchReader reader(dataset, view, 4, 99);
  std::multiset<SampleId> seen;
  for (int b = 0; b < 2; ++b) {
    const Batch batch = reader.next();
    seen.insert(batch.ids.begin(), batch.ids.end());
  }
  EXPECT_EQ(seen.size(), 8u);
  for (const auto index : view) {
    EXPECT_EQ(seen.count(index), 1u);
  }
}

TEST(Reader, DropLastSkipsShortBatch) {
  const Dataset dataset = make_dataset(10);
  std::vector<std::size_t> view{0, 1, 2, 3, 4, 5, 6};  // 7 samples, batch 3
  MiniBatchReader reader(dataset, view, 3, 1, /*drop_last=*/true);
  EXPECT_EQ(reader.batches_per_epoch(), 2u);
  (void)reader.next();
  (void)reader.next();
  EXPECT_EQ(reader.epoch(), 0u);
  (void)reader.next();  // rolls into epoch 1
  EXPECT_EQ(reader.epoch(), 1u);
}

TEST(Reader, KeepLastServesShortBatch) {
  const Dataset dataset = make_dataset(10);
  std::vector<std::size_t> view{0, 1, 2, 3, 4};
  MiniBatchReader reader(dataset, view, 3, 1, /*drop_last=*/false);
  EXPECT_EQ(reader.batches_per_epoch(), 2u);
  (void)reader.next();
  const Batch last = reader.next();
  EXPECT_EQ(last.size(), 2u);
}

TEST(Reader, ShuffleDiffersAcrossEpochs) {
  const Dataset dataset = make_dataset(64);
  std::vector<std::size_t> view(64);
  std::iota(view.begin(), view.end(), 0);
  MiniBatchReader reader(dataset, view, 64, 5);
  const Batch epoch0 = reader.next();
  const Batch epoch1 = reader.next();
  EXPECT_NE(epoch0.ids, epoch1.ids);
}

TEST(Reader, DeterministicPerSeed) {
  const Dataset dataset = make_dataset(16);
  std::vector<std::size_t> view(16);
  std::iota(view.begin(), view.end(), 0);
  MiniBatchReader a(dataset, view, 4, 123);
  MiniBatchReader b(dataset, view, 4, 123);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next().ids, b.next().ids);
  }
}

TEST(Reader, ViewSmallerThanBatchThrows) {
  const Dataset dataset = make_dataset(4);
  EXPECT_THROW(MiniBatchReader(dataset, {0, 1}, 3, 1, /*drop_last=*/true),
               InvalidArgument);
}

TEST(Reader, InvalidViewPositionThrows) {
  const Dataset dataset = make_dataset(4);
  EXPECT_THROW(MiniBatchReader(dataset, {0, 99}, 1, 1), InvalidArgument);
}

}  // namespace
