// Tests for the performance models: cost analysis cross-checked against
// the real network, step-time monotonicity properties, ingestion
// simulations, and — crucially — regression tests pinning the paper's
// published shapes for Figs. 9, 10 and 11.
#include <gtest/gtest.h>

#include <cmath>

#include "perf/experiments.hpp"
#include "perf/ingestion_sim.hpp"
#include "perf/model_cost.hpp"
#include "perf/step_model.hpp"
#include "simulator/cluster.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::perf;

// ---- model cost ------------------------------------------------------------------

TEST(ModelCost, MlpParamsFormula) {
  // 3 -> 4 -> 2: (3*4 + 4) + (4*2 + 2) = 26.
  EXPECT_DOUBLE_EQ(mlp_params(3, {4}, 2), 26.0);
  EXPECT_DOUBLE_EQ(mlp_params(3, {}, 2), 8.0);
}

TEST(ModelCost, PaperScaleMatchesPaperNumbers) {
  const auto config = paper_scale_config();
  // 3 views x 4 channels x 64x64 images + 15 scalars.
  EXPECT_EQ(config.image_width, 49152u);
  EXPECT_EQ(config.output_width(), 49167u);
  EXPECT_EQ(config.latent_width, 20u);
  // ~192 KiB per sample -> 10M samples is ~2 TB, the paper's database.
  const double bytes = sample_bytes(config);
  EXPECT_NEAR(bytes, 4.0 * 49172.0 + 8.0, 1.0);
  EXPECT_NEAR(bytes * 10e6 / 1e12, 2.0, 0.1);  // ~2 TB
}

TEST(ModelCost, FlopsArePositiveAndOrdered) {
  const CycleGanCost cost = analyze(paper_scale_config());
  EXPECT_GT(cost.total_params(), 0.0);
  EXPECT_GT(cost.train_flops_per_sample(), cost.eval_flops_per_sample());
  // The train step runs each network at most a handful of times.
  EXPECT_LT(cost.train_flops_per_sample(), 40.0 * cost.total_params());
  EXPECT_GT(cost.train_flops_per_sample(), 6.0 * cost.total_params());
}

TEST(ModelCost, GeneratorExcludesDiscriminator) {
  const CycleGanCost cost = analyze(paper_scale_config());
  EXPECT_DOUBLE_EQ(
      cost.total_params(),
      cost.generator_params() + cost.discriminator_params);
}

// ---- step model ---------------------------------------------------------------------

TEST(StepModel, SustainedFlopsMonotoneInBatch) {
  const auto spec = sim::lassen_spec();
  double previous = 0.0;
  for (const double batch : {1.0, 2.0, 8.0, 32.0, 128.0}) {
    const double rate = gpu_sustained_flops(spec.gpu, batch);
    EXPECT_GT(rate, previous);
    previous = rate;
  }
  EXPECT_LT(previous, spec.gpu.peak_flops);
}

TEST(StepModel, ComputeTimeFallsWithMoreGpus) {
  const auto spec = sim::lassen_spec();
  const auto cost = analyze(paper_scale_config());
  double previous = 1e30;
  for (const int gpus : {1, 2, 4, 8, 16}) {
    TrainerLayout layout{gpus, std::min(gpus, 4)};
    const double t = compute_time(cost, spec, layout, 128);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(StepModel, ComputeScalingIsSublinear) {
  // Fixed global mini-batch: doubling GPUs must less-than-halve the time
  // (kernel overhead + utilization loss) — the Fig. 9 mechanism.
  const auto spec = sim::lassen_spec();
  const auto cost = analyze(paper_scale_config());
  const double t1 = compute_time(cost, spec, {1, 1}, 128);
  const double t16 = compute_time(cost, spec, {16, 4}, 128);
  EXPECT_GT(t16, t1 / 16.0);
  EXPECT_LT(t16, t1);
}

TEST(StepModel, AllreduceZeroForSingleGpu) {
  const auto spec = sim::lassen_spec();
  const auto cost = analyze(paper_scale_config());
  EXPECT_DOUBLE_EQ(allreduce_time(cost, spec, {1, 1}, {}), 0.0);
}

TEST(StepModel, OneGpuPerNodeRingCostsMoreThanHierarchical) {
  // The Fig. 11 superlinearity mechanism: the paper's 16-node x 1-GPU
  // baseline pays more ring hops over IB than 4 nodes x 4 GPUs.
  const auto spec = sim::lassen_spec();
  const auto cost = analyze(paper_scale_config());
  const Calibration cal;
  const double hierarchical = allreduce_time(cost, spec, {16, 4}, cal);
  const double flat = allreduce_time(cost, spec, {16, 1}, cal);
  EXPECT_GT(flat, hierarchical);
}

TEST(StepModel, ShuffleResidualZeroWhenOverlapped) {
  const auto spec = sim::lassen_spec();
  const Calibration cal;
  // A huge compute time fully hides the shuffle.
  EXPECT_DOUBLE_EQ(
      shuffle_residual(200e3, spec, {16, 4}, 128, /*compute_s=*/10.0, cal,
                       false),
      0.0);
}

TEST(StepModel, DynamicStoreShuffleSlower) {
  const auto spec = sim::lassen_spec();
  const Calibration cal;
  const double dyn = shuffle_residual(200e3, spec, {16, 4}, 128, 0.0, cal,
                                      /*dynamic_store=*/true);
  const double pre = shuffle_residual(200e3, spec, {16, 4}, 128, 0.0, cal,
                                      /*dynamic_store=*/false);
  EXPECT_GT(dyn, pre);
}

TEST(StepModel, RankCapacityScalesWithNodeShare) {
  const auto spec = sim::lassen_spec();
  const Calibration cal;
  // 1 GPU/node ranks get the whole node; 4 GPUs/node a quarter.
  EXPECT_GT(rank_capacity_bytes(spec, {16, 1}, cal),
            3.0 * rank_capacity_bytes(spec, {16, 4}, cal));
}

// ---- ingestion simulations --------------------------------------------------------------

TEST(Ingestion, RandomReadsScaleDownWithReaders) {
  const auto fs = sim::lassen_spec().fs;
  const double t1 = simulate_random_reads(fs, 1, 2000, 196688.0);
  const double t4 = simulate_random_reads(fs, 4, 2000, 196688.0);
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 8.0);  // not superlinear
}

TEST(Ingestion, PreloadFasterThanRandomReads) {
  // Whole-file sequential preload beats per-sample random access on the
  // same data — the data store's raison d'etre.
  const auto fs = sim::lassen_spec().fs;
  const double bytes = 196688.0;
  const double random_t = simulate_random_reads(fs, 4, 10'000, bytes);
  const double preload_t = simulate_preload(fs, 1, 4, 10, 1000, bytes);
  EXPECT_LT(preload_t, random_t);
}

TEST(Ingestion, PreloadDegradesWithManyTrainers) {
  // Beyond the interference knee (512 clients), aggregate preload time
  // rises again — the Fig. 11 observation at 64 trainers.
  const auto fs = sim::lassen_spec().fs;
  const double bytes = 196688.0;
  // Per-trainer share shrinks with trainer count (10M total samples).
  const double t32 = simulate_preload(fs, 32, 16, 10'000 / 32, 1000, bytes);
  const double t64 = simulate_preload(fs, 64, 16, 10'000 / 64, 1000, bytes);
  EXPECT_GT(t64, t32);
}

// ---- figure shape regression tests --------------------------------------------------------

TEST(Fig9, ShapeMatchesPaper) {
  const auto rows = run_fig9(sim::lassen_spec(), PerfWorkload{});
  ASSERT_EQ(rows.size(), 5u);
  // Monotone decreasing epoch time.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].epoch_s, rows[i - 1].epoch_s);
  }
  // Paper: 9.36x speedup at 16 GPUs, 58% parallel efficiency.
  const auto& last = rows.back();
  EXPECT_EQ(last.gpus, 16);
  EXPECT_NEAR(last.speedup, 9.36, 1.2);
  EXPECT_NEAR(last.efficiency, 0.585, 0.08);
  // Diminishing returns: efficiency strictly falls with GPU count.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].efficiency, rows[i - 1].efficiency + 1e-9);
  }
}

TEST(Fig10, ShapeMatchesPaper) {
  const auto rows = run_fig10(sim::lassen_spec(), PerfWorkload{});
  ASSERT_EQ(rows.size(), 5u);
  // Preload infeasible at 1 and 2 GPUs (memory), feasible from 4.
  EXPECT_FALSE(rows[0].preload_steady.has_value());
  EXPECT_FALSE(rows[1].preload_steady.has_value());
  EXPECT_TRUE(rows[2].preload_steady.has_value());
  EXPECT_TRUE(rows[4].preload_steady.has_value());

  // Paper: data store benefit 7.73x at 1 GPU.
  const double benefit_1gpu = rows[0].naive_steady / rows[0].dynamic_steady;
  EXPECT_NEAR(benefit_1gpu, 7.73, 1.5);

  // Paper at 16 GPUs: 1.31x (dynamic store), 1.43x (preload), and preload
  // 1.10x over dynamic.
  const auto& r16 = rows[4];
  EXPECT_NEAR(r16.naive_steady / r16.dynamic_steady, 1.31, 0.25);
  EXPECT_NEAR(r16.naive_steady / *r16.preload_steady, 1.43, 0.25);
  EXPECT_NEAR(r16.dynamic_steady / *r16.preload_steady, 1.10, 0.08);

  // Initial epochs pay the file system; steady state does not.
  for (const auto& row : rows) {
    EXPECT_GE(row.dynamic_initial, row.dynamic_steady);
    if (row.preload_initial) {
      EXPECT_GE(*row.preload_initial, *row.preload_steady);
    }
  }
}

TEST(Fig11, ShapeMatchesPaper) {
  PerfWorkload workload;
  workload.samples = 10'000'000;
  const auto rows = run_fig11(sim::lassen_spec(), workload);
  ASSERT_EQ(rows.size(), 5u);
  // The 1-trainer baseline had to spread over 16 nodes (memory).
  EXPECT_EQ(rows[0].trainers, 1);
  EXPECT_EQ(rows[0].gpus_per_node, 1);
  EXPECT_FALSE(rows[0].note.empty());
  EXPECT_EQ(rows[1].gpus_per_node, 4);

  // Paper: 70.2x speedup at 64 trainers, ~109% parallel efficiency.
  const auto& last = rows.back();
  EXPECT_EQ(last.trainers, 64);
  EXPECT_EQ(last.total_gpus, 1024);
  EXPECT_NEAR(last.speedup, 70.2, 8.0);
  EXPECT_GT(last.efficiency, 1.0);  // superlinear
  EXPECT_LT(last.efficiency, 1.25);

  // Epoch time strictly decreases with trainers.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].epoch_s, rows[i - 1].epoch_s);
  }
  // Preload improves up to 32 trainers, then degrades at 64 (GPFS
  // interference) — the paper's observation.
  EXPECT_LT(rows[3].preload_s, rows[1].preload_s);
  EXPECT_GT(rows[4].preload_s, rows[3].preload_s);
}

TEST(Fig11, LayoutFallsBackForLargePartitions) {
  PerfWorkload workload;
  workload.samples = 10'000'000;
  std::string note;
  const auto layout =
      fig11_layout(sim::lassen_spec(), workload, 1, {}, &note);
  EXPECT_EQ(layout.gpus_per_node, 1);
  EXPECT_FALSE(note.empty());
  const auto layout8 =
      fig11_layout(sim::lassen_spec(), workload, 8, {}, &note);
  EXPECT_EQ(layout8.gpus_per_node, 4);
}

}  // namespace
