// Unit tests for src/comm: point-to-point matching, nonblocking requests,
// collectives against serial references, and communicator split.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "comm/communicator.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::comm;

TEST(Buffers, FloatRoundTrip) {
  const std::vector<float> values{1.5f, -2.25f, 0.0f};
  const Buffer buffer = to_buffer(values);
  EXPECT_EQ(buffer.size(), 12u);
  EXPECT_EQ(floats_from_buffer(buffer), values);
}

TEST(Buffers, MisalignedBufferThrows) {
  Buffer buffer(5);
  EXPECT_THROW(floats_from_buffer(buffer), InvalidArgument);
}

TEST(World, InvalidSizeThrows) { EXPECT_THROW(World(0), InvalidArgument); }

TEST(World, RankOutOfRangeThrows) {
  World world(2);
  EXPECT_THROW(world.communicator(2), InvalidArgument);
  EXPECT_THROW(world.communicator(-1), InvalidArgument);
}

TEST(World, RunRethrowsRankException) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& comm) {
                            if (comm.rank() == 1) {
                              throw std::runtime_error("rank failure");
                            }
                            // rank 0 returns immediately; no collective
                          }),
               std::runtime_error);
}

TEST(PointToPoint, SendRecvBasic) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<std::uint8_t>{1, 2, 3});
    } else {
      const Buffer buffer = comm.recv(0, 7);
      EXPECT_EQ(buffer, (Buffer{1, 2, 3}));
    }
  });
}

TEST(PointToPoint, TagMatchingHoldsBackOtherTags) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::vector<std::uint8_t>{5});
      comm.send(1, 6, std::vector<std::uint8_t>{6});
    } else {
      // Receive tag 6 first even though tag 5 arrived earlier.
      EXPECT_EQ(comm.recv(0, 6), (Buffer{6}));
      EXPECT_EQ(comm.recv(0, 5), (Buffer{5}));
    }
  });
}

TEST(PointToPoint, FifoPerSourceAndTag) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 10; ++i) {
        comm.send(1, 3, std::vector<std::uint8_t>{i});
      }
    } else {
      for (std::uint8_t i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 3), (Buffer{i}));
      }
    }
  });
}

TEST(PointToPoint, AnySource) {
  World::run(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send(0, 1, std::vector<std::uint8_t>{
                          static_cast<std::uint8_t>(comm.rank())});
    } else {
      std::set<int> sources;
      for (int i = 0; i < 2; ++i) {
        int source = -1;
        const Buffer buffer = comm.recv(kAnySource, 1, &source);
        EXPECT_EQ(buffer[0], static_cast<std::uint8_t>(source));
        sources.insert(source);
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2}));
    }
  });
}

TEST(PointToPoint, SendToSelf) {
  World::run(1, [](Communicator& comm) {
    comm.send(0, 9, std::vector<std::uint8_t>{42});
    EXPECT_EQ(comm.recv(0, 9), (Buffer{42}));
  });
}

TEST(PointToPoint, SendRecvExchange) {
  World::run(2, [](Communicator& comm) {
    const Buffer mine{static_cast<std::uint8_t>(comm.rank() + 10)};
    const Buffer theirs = comm.sendrecv(1 - comm.rank(), 2, mine);
    EXPECT_EQ(theirs[0], static_cast<std::uint8_t>((1 - comm.rank()) + 10));
  });
}

TEST(PointToPoint, FloatPayloadHelpers) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<float> data{3.5f, -1.0f};
      comm.send(1, 0, std::span<const float>(data));
    } else {
      EXPECT_EQ(floats_from_buffer(comm.recv(0, 0)),
                (std::vector<float>{3.5f, -1.0f}));
    }
  });
}

TEST(Request, IrecvCompletesAfterSend) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request request = comm.irecv(0, 4);
      comm.send(0, 8, std::vector<std::uint8_t>{});  // signal readiness
      request.wait();
      EXPECT_TRUE(request.test());
      EXPECT_EQ(comm.take_payload(request), (Buffer{9}));
    } else {
      (void)comm.recv(1, 8);
      comm.send(1, 4, std::vector<std::uint8_t>{9});
    }
  });
}

TEST(Request, TestDoesNotBlock) {
  World::run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 11);
    EXPECT_FALSE(request.test());  // nothing sent yet
    comm.send(0, 11, std::vector<std::uint8_t>{1});
    EXPECT_TRUE(request.test());
  });
}

TEST(Request, InvalidHandleThrows) {
  Request request;
  EXPECT_FALSE(request.valid());
  EXPECT_THROW(request.test(), InvalidArgument);
  EXPECT_THROW(request.wait(), InvalidArgument);
}

TEST(Request, DoubleWaitIsIdempotent) {
  World::run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 3);
    comm.send(0, 3, std::vector<std::uint8_t>{42});
    request.wait();
    request.wait();  // already complete: returns immediately
    EXPECT_TRUE(request.test());
    EXPECT_EQ(comm.take_payload(request), (Buffer{42}));
  });
}

TEST(Request, TimedOutWaitLeavesRequestReWaitable) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request request = comm.irecv(0, 4);
      // Nothing sent yet: the deadline fires, but the request is neither
      // consumed nor invalidated — a later wait can still complete it.
      EXPECT_THROW(request.wait(std::chrono::milliseconds(50)), TimeoutError);
      EXPECT_TRUE(request.valid());
      EXPECT_FALSE(request.test());
      comm.send(0, 8, std::vector<std::uint8_t>{});  // signal readiness
      request.wait(std::chrono::milliseconds(5000));
      EXPECT_TRUE(request.test());
      EXPECT_EQ(comm.take_payload(request), (Buffer{7}));
    } else {
      (void)comm.recv(1, 8);
      comm.send(1, 4, std::vector<std::uint8_t>{7});
    }
  });
}

TEST(Request, TakePayloadBeforeCompletionThrows) {
  World::run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 5);
    EXPECT_THROW(comm.take_payload(request), InvalidArgument);
    // The failed take must not have corrupted the pending receive.
    comm.send(0, 5, std::vector<std::uint8_t>{7});
    request.wait();
    EXPECT_EQ(comm.take_payload(request), (Buffer{7}));
  });
}

TEST(Request, SecondTakePayloadReturnsEmpty) {
  World::run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 6);
    comm.send(0, 6, std::vector<std::uint8_t>{1, 2});
    request.wait();
    EXPECT_EQ(comm.take_payload(request).size(), 2u);
    EXPECT_TRUE(request.test());  // still complete...
    EXPECT_TRUE(comm.take_payload(request).empty());  // ...but drained
  });
}

TEST(Request, DestroyingIncompleteRequestLeavesMessageClaimable) {
  World::run(1, [](Communicator& comm) {
    {
      Request abandoned = comm.irecv(0, 9);
      EXPECT_FALSE(abandoned.test());
    }  // destroyed incomplete: the pending receive is simply dropped
    comm.send(0, 9, std::vector<std::uint8_t>{5});
    // A fresh receive can still claim the message.
    EXPECT_EQ(comm.recv(0, 9), (Buffer{5}));
  });
}

TEST(Request, DestroyingCompletedButUntakenRequestDropsPayload) {
  World::run(1, [](Communicator& comm) {
    comm.send(0, 12, std::vector<std::uint8_t>{1});
    {
      Request request = comm.irecv(0, 12);
      request.wait();  // message consumed from the mailbox into the request
    }  // payload destroyed with the request
    Request probe = comm.irecv(0, 12);
    EXPECT_FALSE(probe.test());  // the message is gone, not re-queued
  });
}

#if LTFB_ASSERT_ENABLED
TEST(Request, ConcurrentHandleUseFailsFast) {
  // The single-thread contract check: while one thread is blocked inside
  // recv() on a handle, a second thread entering any comm call on the SAME
  // handle must fail fast with ltfb::Error instead of racing.
  World world(2);
  Communicator comm0 = world.communicator(0);
  Communicator comm1 = world.communicator(1);
  std::thread receiver([&comm0] {
    const Buffer buffer = comm0.recv(1, 77);  // blocks until released below
    EXPECT_EQ(buffer, (Buffer{1}));
  });
  // Once the receiver is parked inside recv() it holds the use stamp until
  // the matching send arrives, so eventually our probe must throw.
  bool threw = false;
  for (int i = 0; i < 200000 && !threw; ++i) {
    try {
      comm0.send(0, 1, Buffer{});
      // Accepted: receiver was not inside recv yet. Drain our own probe
      // message later is unnecessary — tag 1 never matches tag 77.
      std::this_thread::yield();
    } catch (const Error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  comm1.send(0, 77, Buffer{1});  // release the receiver
  receiver.join();
}
#endif  // LTFB_ASSERT_ENABLED

// ---- collectives -----------------------------------------------------------

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, Barrier) {
  const int n = GetParam();
  std::atomic<int> arrived{0};
  World::run(n, [&](Communicator& comm) {
    ++arrived;
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
    comm.barrier();
  });
}

TEST_P(CollectiveSizes, BroadcastFromEveryRoot) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      Buffer payload;
      if (comm.rank() == root) {
        payload = Buffer{static_cast<std::uint8_t>(root + 1), 7};
      }
      comm.broadcast(root, payload);
      ASSERT_EQ(payload.size(), 2u);
      EXPECT_EQ(payload[0], static_cast<std::uint8_t>(root + 1));
    }
  });
}

TEST_P(CollectiveSizes, AllreduceSum) {
  const int n = GetParam();
  // 10 elements (not divisible by most n) exercises uneven ring chunks.
  World::run(n, [&](Communicator& comm) {
    std::vector<float> values(10);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<float>(comm.rank() + 1) *
                  static_cast<float>(i + 1);
    }
    comm.allreduce(values, ReduceOp::Sum);
    const float rank_sum = static_cast<float>(n * (n + 1)) / 2.0f;
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_FLOAT_EQ(values[i], rank_sum * static_cast<float>(i + 1));
    }
  });
}

TEST_P(CollectiveSizes, AllreduceMaxMin) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    std::vector<float> values{static_cast<float>(comm.rank()),
                              static_cast<float>(-comm.rank())};
    std::vector<float> mins = values;
    comm.allreduce(values, ReduceOp::Max);
    comm.allreduce(mins, ReduceOp::Min);
    EXPECT_FLOAT_EQ(values[0], static_cast<float>(n - 1));
    EXPECT_FLOAT_EQ(mins[1], static_cast<float>(-(n - 1)));
  });
}

TEST_P(CollectiveSizes, AllreduceSmallerThanRanks) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    std::vector<float> values{1.0f};  // fewer elements than ranks
    comm.allreduce(values, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(values[0], static_cast<float>(n));
  });
}

TEST_P(CollectiveSizes, Allgather) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    const std::vector<float> mine{static_cast<float>(comm.rank()),
                                  static_cast<float>(comm.rank() * 10)};
    const std::vector<float> all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
    for (int r = 0; r < n; ++r) {
      EXPECT_FLOAT_EQ(all[2 * r], static_cast<float>(r));
      EXPECT_FLOAT_EQ(all[2 * r + 1], static_cast<float>(r * 10));
    }
  });
}

TEST_P(CollectiveSizes, BackToBackCollectivesDoNotCrossMatch) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    for (int iteration = 0; iteration < 20; ++iteration) {
      std::vector<float> values{static_cast<float>(comm.rank() + iteration)};
      comm.allreduce(values, ReduceOp::Sum);
      float expected = 0.0f;
      for (int r = 0; r < n; ++r) {
        expected += static_cast<float>(r + iteration);
      }
      ASSERT_FLOAT_EQ(values[0], expected) << "iteration " << iteration;
    }
  });
}

TEST_P(CollectiveSizes, ReduceToEveryRoot) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<float> values{static_cast<float>(comm.rank() + 1), 2.0f};
      const std::vector<float> saved = values;
      comm.reduce(root, values, ReduceOp::Sum);
      if (comm.rank() == root) {
        EXPECT_FLOAT_EQ(values[0], static_cast<float>(n * (n + 1)) / 2.0f);
        EXPECT_FLOAT_EQ(values[1], 2.0f * static_cast<float>(n));
      } else {
        EXPECT_EQ(values, saved);  // non-root buffers untouched
      }
    }
  });
}

TEST_P(CollectiveSizes, ReduceMax) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    std::vector<float> values{static_cast<float>(comm.rank())};
    comm.reduce(0, values, ReduceOp::Max);
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(values[0], static_cast<float>(n - 1));
    }
  });
}

TEST_P(CollectiveSizes, GatherAtEveryRoot) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      const std::vector<float> mine{static_cast<float>(comm.rank() * 2),
                                    static_cast<float>(comm.rank() * 2 + 1)};
      const std::vector<float> all = comm.gather(root, mine);
      if (comm.rank() == root) {
        ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
        for (int r = 0; r < n; ++r) {
          EXPECT_FLOAT_EQ(all[2 * r], static_cast<float>(r * 2));
          EXPECT_FLOAT_EQ(all[2 * r + 1], static_cast<float>(r * 2 + 1));
        }
      } else {
        EXPECT_TRUE(all.empty());
      }
    }
  });
}

TEST_P(CollectiveSizes, ScatterFromEveryRoot) {
  const int n = GetParam();
  World::run(n, [&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<float> send;
      if (comm.rank() == root) {
        for (int r = 0; r < n; ++r) {
          send.push_back(static_cast<float>(r * 10));
          send.push_back(static_cast<float>(r * 10 + 1));
        }
      }
      const std::vector<float> mine = comm.scatter(root, send, 2);
      ASSERT_EQ(mine.size(), 2u);
      EXPECT_FLOAT_EQ(mine[0], static_cast<float>(comm.rank() * 10));
      EXPECT_FLOAT_EQ(mine[1], static_cast<float>(comm.rank() * 10 + 1));
    }
  });
}

TEST(Scatter, WrongBufferSizeThrows) {
  World::run(1, [](Communicator& comm) {
    std::vector<float> bad(3);  // needs 1 * chunk(2) = 2
    EXPECT_THROW((void)comm.scatter(0, bad, 2), InvalidArgument);
  });
}

TEST(Reduce, GatherReduceComposeWithOtherCollectives) {
  World::run(4, [](Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      std::vector<float> v{1.0f};
      comm.reduce(i % 4, v, ReduceOp::Sum);
      comm.barrier();
      const auto all = comm.gather((i + 1) % 4, std::vector<float>{2.0f});
      if (comm.rank() == (i + 1) % 4) {
        EXPECT_EQ(all.size(), 4u);
      }
      std::vector<float> sum{static_cast<float>(comm.rank())};
      comm.allreduce(sum, ReduceOp::Sum);
      EXPECT_FLOAT_EQ(sum[0], 6.0f);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(Split, GroupsByColor) {
  World::run(6, [](Communicator& comm) {
    const int color = comm.rank() % 2;
    Communicator sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Sub-rank order follows the key (= old rank).
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work within the sub-communicator.
    std::vector<float> values{static_cast<float>(comm.rank())};
    sub.allreduce(values, ReduceOp::Sum);
    const float expected = (color == 0) ? (0 + 2 + 4) : (1 + 3 + 5);
    EXPECT_FLOAT_EQ(values[0], expected);
  });
}

TEST(Split, SubCommunicatorsAreIsolated) {
  World::run(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    // Same-tag traffic in different sub-communicators must not mix.
    const Buffer mine{static_cast<std::uint8_t>(comm.rank())};
    const Buffer theirs = sub.sendrecv(1 - sub.rank(), 0, mine);
    const int partner_world = (comm.rank() / 2) * 2 + (1 - comm.rank() % 2);
    EXPECT_EQ(theirs[0], static_cast<std::uint8_t>(partner_world));
  });
}

TEST(Split, WorldRankMapping) {
  World::run(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.world_rank_of(sub.rank()), comm.rank());
  });
}

TEST(Split, NestedSplit) {
  World::run(8, [](Communicator& comm) {
    Communicator half = comm.split(comm.rank() / 4, comm.rank());
    Communicator quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::vector<float> values{1.0f};
    quarter.allreduce(values, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(values[0], 2.0f);
  });
}

TEST(Stress, ManyMixedOperations) {
  World::run(4, [](Communicator& comm) {
    for (int i = 0; i < 30; ++i) {
      comm.barrier();
      std::vector<float> values(7, static_cast<float>(comm.rank()));
      comm.allreduce(values, ReduceOp::Sum);
      EXPECT_FLOAT_EQ(values[3], 6.0f);  // 0+1+2+3
      Buffer payload;
      if (comm.rank() == i % 4) {
        payload = Buffer{static_cast<std::uint8_t>(i)};
      }
      comm.broadcast(i % 4, payload);
      EXPECT_EQ(payload[0], static_cast<std::uint8_t>(i));
      const Buffer exchanged =
          comm.sendrecv(comm.size() - 1 - comm.rank(), 100 + i,
                        Buffer{static_cast<std::uint8_t>(comm.rank())});
      EXPECT_EQ(exchanged[0],
                static_cast<std::uint8_t>(comm.size() - 1 - comm.rank()));
    }
  });
}

}  // namespace
