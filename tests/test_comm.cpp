// Unit tests for src/comm: typed serialization, the socket wire format,
// Deadline semantics, point-to-point matching, nonblocking requests,
// collectives against serial references, and communicator split.
//
// Every transport-visible test is parameterized over BackendKind so the
// identical suite runs on both the in-process mailbox backend and the
// socket backend (loopback mode: every rank a thread of this process, but
// all traffic through real AF_UNIX stream sockets and the framed wire
// format). Multi-process socket runs are covered by the SpawnProcesses
// tests at the bottom.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/socket_io_testing.hpp"
#include "comm/wire.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::comm;

// ---- serializer ------------------------------------------------------------

TEST(Serializer, TypedRoundTrip) {
  Serializer out;
  out.u8(7)
      .u32(0xdeadbeefu)
      .u64(0x0123456789abcdefull)
      .i64(-42)
      .f32(1.5f)
      .floats(std::vector<float>{3.0f, -0.5f})
      .ints(std::vector<std::int64_t>{-1, 2, 3})
      .str("ltfb");
  const Buffer buffer = out.take();

  Deserializer in(buffer);
  EXPECT_EQ(in.u8(), 7u);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(in.i64(), -42);
  EXPECT_FLOAT_EQ(in.f32(), 1.5f);
  EXPECT_EQ(in.floats(), (std::vector<float>{3.0f, -0.5f}));
  EXPECT_EQ(in.ints(), (std::vector<std::int64_t>{-1, 2, 3}));
  EXPECT_EQ(in.str(), "ltfb");
  EXPECT_TRUE(in.done());
  in.expect_end();
}

TEST(Serializer, PackFloatsRoundTrip) {
  const std::vector<float> values{1.5f, -2.25f, 0.0f};
  const Buffer buffer = Serializer::pack_floats(values);
  EXPECT_EQ(buffer.size(), 12u);
  EXPECT_EQ(Deserializer::unpack_floats(buffer), values);
}

TEST(Serializer, MisalignedFloatBufferThrows) {
  Buffer buffer(5);
  EXPECT_THROW(Deserializer::unpack_floats(buffer), FormatError);
}

TEST(Serializer, TruncatedFieldThrows) {
  Serializer out;
  out.u64(99);
  Buffer buffer = out.take();
  buffer.pop_back();  // u64 now 7 bytes
  Deserializer in(buffer);
  EXPECT_THROW(in.u64(), FormatError);
}

TEST(Serializer, OverlongCountPrefixThrows) {
  Serializer out;
  out.u32(1000);  // claims 1000 floats, provides none
  Deserializer in(out.buffer());
  EXPECT_THROW(in.floats(), FormatError);
}

TEST(Serializer, TrailingBytesFailExpectEnd) {
  Serializer out;
  out.u8(1).u8(2);
  Deserializer in(out.buffer());
  EXPECT_EQ(in.u8(), 1u);
  EXPECT_THROW(in.expect_end(), FormatError);
}

// ---- wire format -----------------------------------------------------------

TEST(Wire, FrameRoundTripThroughDecoder) {
  wire::Frame frame;
  frame.kind = wire::FrameKind::Message;
  frame.comm_id = 0x1234u;
  frame.tag = -7;
  frame.src = 3;
  frame.dst = 1;
  frame.seq = 41;
  frame.flow_id = 0x9999u;
  frame.payload = Buffer{10, 20, 30};
  const Buffer encoded = wire::encode_frame(frame);

  // Feed the decoder one byte at a time: frames must reassemble from
  // arbitrary stream fragmentation.
  wire::FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    decoder.feed(&encoded[i], 1);
    EXPECT_FALSE(decoder.next().has_value());
  }
  decoder.feed(&encoded.back(), 1);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, wire::FrameKind::Message);
  EXPECT_EQ(decoded->comm_id, 0x1234u);
  EXPECT_EQ(decoded->tag, -7);
  EXPECT_EQ(decoded->src, 3);
  EXPECT_EQ(decoded->dst, 1);
  EXPECT_EQ(decoded->seq, 41u);
  EXPECT_EQ(decoded->flow_id, 0x9999u);
  EXPECT_EQ(decoded->payload, (Buffer{10, 20, 30}));
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(Wire, UnknownFrameKindThrows) {
  wire::Frame frame;
  frame.kind = wire::FrameKind::Message;
  Buffer encoded = wire::encode_frame(frame);
  encoded[4] = 250;  // the kind byte, right after the u32 length prefix
  wire::FrameDecoder decoder;
  decoder.feed(encoded.data(), encoded.size());
  EXPECT_THROW(decoder.next(), FormatError);
}

TEST(Wire, PayloadCountMismatchThrows) {
  wire::Frame frame;
  frame.payload = Buffer{1, 2, 3, 4};
  Buffer encoded = wire::encode_frame(frame);
  encoded.pop_back();  // truncate payload, leave the count prefix at 4
  // Patch the outer length prefix to match the truncated body so the
  // decoder hands the body to the frame parser.
  const std::uint32_t length =
      static_cast<std::uint32_t>(encoded.size() - sizeof(std::uint32_t));
  std::memcpy(encoded.data(), &length, sizeof(length));
  wire::FrameDecoder decoder;
  decoder.feed(encoded.data(), encoded.size());
  EXPECT_THROW(decoder.next(), FormatError);
}

TEST(Wire, OversizeLengthPrefixThrows) {
  Serializer out;
  out.u32(wire::kMaxFrameBytes + 1);
  const Buffer encoded = out.buffer();
  wire::FrameDecoder decoder;
  decoder.feed(encoded.data(), encoded.size());
  EXPECT_THROW(decoder.next(), FormatError);
}

// ---- deadline --------------------------------------------------------------

TEST(DeadlineOptions, NeverIsUnbounded) {
  EXPECT_FALSE(Deadline::never().bounded());
  EXPECT_FALSE(Deadline().bounded());
}

TEST(DeadlineOptions, MillisecondsConvertImplicitly) {
  const Deadline deadline = std::chrono::milliseconds(250);
  EXPECT_TRUE(deadline.bounded());
  EXPECT_EQ(deadline.budget(), std::chrono::milliseconds(250));
}

TEST(DeadlineOptions, NonPositiveBudgetThrows) {
  EXPECT_THROW(Deadline::after(std::chrono::milliseconds(0)), InvalidArgument);
  EXPECT_THROW(Deadline::after(std::chrono::milliseconds(-5)),
               InvalidArgument);
}

// ---- backend-parameterized communicator suite ------------------------------

std::string backend_param_name(
    const ::testing::TestParamInfo<BackendKind>& info) {
  return backend_name(info.param);
}

/// Runs the identical rank function on the in-process and socket (loopback)
/// transports; `Run` mirrors World::run but pins the backend under test.
class CommBackends : public ::testing::TestWithParam<BackendKind> {
 protected:
  void Run(int size, const std::function<void(Communicator&)>& fn) {
    World world(size, GetParam());
    for (const std::exception_ptr& error : world.run_ranks(fn)) {
      if (error) std::rethrow_exception(error);
    }
  }
};

TEST_P(CommBackends, InvalidSizeThrows) {
  EXPECT_THROW(World(0, GetParam()), InvalidArgument);
}

TEST_P(CommBackends, RankOutOfRangeThrows) {
  World world(2, GetParam());
  EXPECT_THROW(world.communicator(2), InvalidArgument);
  EXPECT_THROW(world.communicator(-1), InvalidArgument);
}

TEST_P(CommBackends, RunRethrowsRankException) {
  EXPECT_THROW(Run(2,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       throw std::runtime_error("rank failure");
                     }
                     // rank 0 returns immediately; no collective
                   }),
               std::runtime_error);
}

TEST_P(CommBackends, SendRecvBasic) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<std::uint8_t>{1, 2, 3});
    } else {
      const Buffer buffer = comm.recv(0, 7);
      EXPECT_EQ(buffer, (Buffer{1, 2, 3}));
    }
  });
}

TEST_P(CommBackends, TagMatchingHoldsBackOtherTags) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::vector<std::uint8_t>{5});
      comm.send(1, 6, std::vector<std::uint8_t>{6});
    } else {
      // Receive tag 6 first even though tag 5 arrived earlier.
      EXPECT_EQ(comm.recv(0, 6), (Buffer{6}));
      EXPECT_EQ(comm.recv(0, 5), (Buffer{5}));
    }
  });
}

TEST_P(CommBackends, FifoPerSourceAndTag) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 10; ++i) {
        comm.send(1, 3, std::vector<std::uint8_t>{i});
      }
    } else {
      for (std::uint8_t i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 3), (Buffer{i}));
      }
    }
  });
}

TEST_P(CommBackends, AnySource) {
  Run(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send(0, 1, std::vector<std::uint8_t>{
                          static_cast<std::uint8_t>(comm.rank())});
    } else {
      std::set<int> sources;
      for (int i = 0; i < 2; ++i) {
        int source = -1;
        const Buffer buffer = comm.recv(kAnySource, 1, &source);
        EXPECT_EQ(buffer[0], static_cast<std::uint8_t>(source));
        sources.insert(source);
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2}));
    }
  });
}

TEST_P(CommBackends, SendToSelf) {
  Run(1, [](Communicator& comm) {
    comm.send(0, 9, std::vector<std::uint8_t>{42});
    EXPECT_EQ(comm.recv(0, 9), (Buffer{42}));
  });
}

TEST_P(CommBackends, SendRecvExchange) {
  Run(2, [](Communicator& comm) {
    const Buffer mine{static_cast<std::uint8_t>(comm.rank() + 10)};
    const Buffer theirs = comm.sendrecv(1 - comm.rank(), 2, mine);
    EXPECT_EQ(theirs[0], static_cast<std::uint8_t>((1 - comm.rank()) + 10));
  });
}

TEST_P(CommBackends, FloatPayloadHelpers) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<float> data{3.5f, -1.0f};
      comm.send(1, 0, std::span<const float>(data));
    } else {
      EXPECT_EQ(Deserializer::unpack_floats(comm.recv(0, 0)),
                (std::vector<float>{3.5f, -1.0f}));
    }
  });
}

TEST_P(CommBackends, IrecvCompletesAfterSend) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request request = comm.irecv(0, 4);
      comm.send(0, 8, std::vector<std::uint8_t>{});  // signal readiness
      request.wait();
      EXPECT_TRUE(request.test());
      EXPECT_EQ(comm.take_payload(request), (Buffer{9}));
    } else {
      (void)comm.recv(1, 8);
      comm.send(1, 4, std::vector<std::uint8_t>{9});
    }
  });
}

TEST_P(CommBackends, RequestTestDoesNotBlock) {
  Run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 11);
    EXPECT_FALSE(request.test());  // nothing sent yet
    comm.send(0, 11, std::vector<std::uint8_t>{1});
    EXPECT_TRUE(request.test());
  });
}

TEST_P(CommBackends, RequestDoubleWaitIsIdempotent) {
  Run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 3);
    comm.send(0, 3, std::vector<std::uint8_t>{42});
    request.wait();
    request.wait();  // already complete: returns immediately
    EXPECT_TRUE(request.test());
    EXPECT_EQ(comm.take_payload(request), (Buffer{42}));
  });
}

TEST_P(CommBackends, TimedOutWaitLeavesRequestReWaitable) {
  Run(2, [](Communicator& comm) {
    if (comm.rank() == 1) {
      Request request = comm.irecv(0, 4);
      // Nothing sent yet: the deadline fires, but the request is neither
      // consumed nor invalidated — a later wait can still complete it.
      EXPECT_THROW(request.wait(std::chrono::milliseconds(50)), TimeoutError);
      EXPECT_TRUE(request.valid());
      EXPECT_FALSE(request.test());
      comm.send(0, 8, std::vector<std::uint8_t>{});  // signal readiness
      request.wait(std::chrono::milliseconds(5000));
      EXPECT_TRUE(request.test());
      EXPECT_EQ(comm.take_payload(request), (Buffer{7}));
    } else {
      (void)comm.recv(1, 8);
      comm.send(1, 4, std::vector<std::uint8_t>{7});
    }
  });
}

TEST_P(CommBackends, TakePayloadBeforeCompletionThrows) {
  Run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 5);
    EXPECT_THROW(comm.take_payload(request), InvalidArgument);
    // The failed take must not have corrupted the pending receive.
    comm.send(0, 5, std::vector<std::uint8_t>{7});
    request.wait();
    EXPECT_EQ(comm.take_payload(request), (Buffer{7}));
  });
}

TEST_P(CommBackends, SecondTakePayloadReturnsEmpty) {
  Run(1, [](Communicator& comm) {
    Request request = comm.irecv(0, 6);
    comm.send(0, 6, std::vector<std::uint8_t>{1, 2});
    request.wait();
    EXPECT_EQ(comm.take_payload(request).size(), 2u);
    EXPECT_TRUE(request.test());  // still complete...
    EXPECT_TRUE(comm.take_payload(request).empty());  // ...but drained
  });
}

TEST_P(CommBackends, DestroyingIncompleteRequestLeavesMessageClaimable) {
  Run(1, [](Communicator& comm) {
    {
      Request abandoned = comm.irecv(0, 9);
      EXPECT_FALSE(abandoned.test());
    }  // destroyed incomplete: the pending receive is simply dropped
    comm.send(0, 9, std::vector<std::uint8_t>{5});
    // A fresh receive can still claim the message.
    EXPECT_EQ(comm.recv(0, 9), (Buffer{5}));
  });
}

TEST_P(CommBackends, DestroyingCompletedButUntakenRequestDropsPayload) {
  Run(1, [](Communicator& comm) {
    comm.send(0, 12, std::vector<std::uint8_t>{1});
    {
      Request request = comm.irecv(0, 12);
      request.wait();  // message consumed from the mailbox into the request
    }  // payload destroyed with the request
    Request probe = comm.irecv(0, 12);
    EXPECT_FALSE(probe.test());  // the message is gone, not re-queued
  });
}

TEST_P(CommBackends, SplitGroupsByColor) {
  Run(6, [](Communicator& comm) {
    const int color = comm.rank() % 2;
    Communicator sub = comm.split(color, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    // Sub-rank order follows the key (= old rank).
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives work within the sub-communicator.
    std::vector<float> values{static_cast<float>(comm.rank())};
    sub.allreduce(values, ReduceOp::Sum);
    const float expected = (color == 0) ? (0 + 2 + 4) : (1 + 3 + 5);
    EXPECT_FLOAT_EQ(values[0], expected);
  });
}

TEST_P(CommBackends, SubCommunicatorsAreIsolated) {
  Run(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    // Same-tag traffic in different sub-communicators must not mix.
    const Buffer mine{static_cast<std::uint8_t>(comm.rank())};
    const Buffer theirs = sub.sendrecv(1 - sub.rank(), 0, mine);
    const int partner_world = (comm.rank() / 2) * 2 + (1 - comm.rank() % 2);
    EXPECT_EQ(theirs[0], static_cast<std::uint8_t>(partner_world));
  });
}

TEST_P(CommBackends, SplitWorldRankMapping) {
  Run(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.world_rank_of(sub.rank()), comm.rank());
  });
}

TEST_P(CommBackends, NestedSplit) {
  Run(8, [](Communicator& comm) {
    Communicator half = comm.split(comm.rank() / 4, comm.rank());
    Communicator quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::vector<float> values{1.0f};
    quarter.allreduce(values, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(values[0], 2.0f);
  });
}

TEST_P(CommBackends, ScatterWrongBufferSizeThrows) {
  Run(1, [](Communicator& comm) {
    std::vector<float> bad(3);  // needs 1 * chunk(2) = 2
    EXPECT_THROW((void)comm.scatter(0, bad, 2), InvalidArgument);
  });
}

TEST_P(CommBackends, GatherReduceComposeWithOtherCollectives) {
  Run(4, [](Communicator& comm) {
    for (int i = 0; i < 10; ++i) {
      std::vector<float> v{1.0f};
      comm.reduce(i % 4, v, ReduceOp::Sum);
      comm.barrier();
      const auto all = comm.gather((i + 1) % 4, std::vector<float>{2.0f});
      if (comm.rank() == (i + 1) % 4) {
        EXPECT_EQ(all.size(), 4u);
      }
      std::vector<float> sum{static_cast<float>(comm.rank())};
      comm.allreduce(sum, ReduceOp::Sum);
      EXPECT_FLOAT_EQ(sum[0], 6.0f);
    }
  });
}

TEST_P(CommBackends, ManyMixedOperations) {
  Run(4, [](Communicator& comm) {
    for (int i = 0; i < 30; ++i) {
      comm.barrier();
      std::vector<float> values(7, static_cast<float>(comm.rank()));
      comm.allreduce(values, ReduceOp::Sum);
      EXPECT_FLOAT_EQ(values[3], 6.0f);  // 0+1+2+3
      Buffer payload;
      if (comm.rank() == i % 4) {
        payload = Buffer{static_cast<std::uint8_t>(i)};
      }
      comm.broadcast(i % 4, payload);
      EXPECT_EQ(payload[0], static_cast<std::uint8_t>(i));
      const Buffer exchanged =
          comm.sendrecv(comm.size() - 1 - comm.rank(), 100 + i,
                        Buffer{static_cast<std::uint8_t>(comm.rank())});
      EXPECT_EQ(exchanged[0],
                static_cast<std::uint8_t>(comm.size() - 1 - comm.rank()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Transports, CommBackends,
                         ::testing::Values(BackendKind::InProc,
                                           BackendKind::Socket),
                         backend_param_name);

#if LTFB_ASSERT_ENABLED
TEST(Request, ConcurrentHandleUseFailsFast) {
  // The single-thread contract check: while one thread is blocked inside
  // recv() on a handle, a second thread entering any comm call on the SAME
  // handle must fail fast with ltfb::Error instead of racing.
  World world(2);
  Communicator comm0 = world.communicator(0);
  Communicator comm1 = world.communicator(1);
  std::thread receiver([&comm0] {
    const Buffer buffer = comm0.recv(1, 77);  // blocks until released below
    EXPECT_EQ(buffer, (Buffer{1}));
  });
  // Once the receiver is parked inside recv() it holds the use stamp until
  // the matching send arrives, so eventually our probe must throw.
  bool threw = false;
  for (int i = 0; i < 200000 && !threw; ++i) {
    try {
      comm0.send(0, 1, Buffer{});
      // Accepted: receiver was not inside recv yet. Drain our own probe
      // message later is unnecessary — tag 1 never matches tag 77.
      std::this_thread::yield();
    } catch (const Error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  comm1.send(0, 77, Buffer{1});  // release the receiver
  receiver.join();
}
#endif  // LTFB_ASSERT_ENABLED

TEST(Request, InvalidHandleThrows) {
  Request request;
  EXPECT_FALSE(request.valid());
  EXPECT_THROW(request.test(), InvalidArgument);
  EXPECT_THROW(request.wait(), InvalidArgument);
}

// ---- collectives across sizes and transports -------------------------------

std::string collective_param_name(
    const ::testing::TestParamInfo<std::tuple<BackendKind, int>>& info) {
  return std::string(backend_name(std::get<0>(info.param))) +
         std::to_string(std::get<1>(info.param));
}

class CollectiveSizes
    : public ::testing::TestWithParam<std::tuple<BackendKind, int>> {
 protected:
  int Size() const { return std::get<1>(GetParam()); }

  void Run(const std::function<void(Communicator&)>& fn) {
    World world(Size(), std::get<0>(GetParam()));
    for (const std::exception_ptr& error : world.run_ranks(fn)) {
      if (error) std::rethrow_exception(error);
    }
  }
};

TEST_P(CollectiveSizes, Barrier) {
  const int n = Size();
  std::atomic<int> arrived{0};
  Run([&](Communicator& comm) {
    ++arrived;
    comm.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
    comm.barrier();
  });
}

TEST_P(CollectiveSizes, BroadcastFromEveryRoot) {
  const int n = Size();
  Run([&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      Buffer payload;
      if (comm.rank() == root) {
        payload = Buffer{static_cast<std::uint8_t>(root + 1), 7};
      }
      comm.broadcast(root, payload);
      ASSERT_EQ(payload.size(), 2u);
      EXPECT_EQ(payload[0], static_cast<std::uint8_t>(root + 1));
    }
  });
}

TEST_P(CollectiveSizes, AllreduceSum) {
  const int n = Size();
  // 10 elements (not divisible by most n) exercises uneven ring chunks.
  Run([&](Communicator& comm) {
    std::vector<float> values(10);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<float>(comm.rank() + 1) *
                  static_cast<float>(i + 1);
    }
    comm.allreduce(values, ReduceOp::Sum);
    const float rank_sum = static_cast<float>(n * (n + 1)) / 2.0f;
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_FLOAT_EQ(values[i], rank_sum * static_cast<float>(i + 1));
    }
  });
}

TEST_P(CollectiveSizes, AllreduceMaxMin) {
  const int n = Size();
  Run([&](Communicator& comm) {
    std::vector<float> values{static_cast<float>(comm.rank()),
                              static_cast<float>(-comm.rank())};
    std::vector<float> mins = values;
    comm.allreduce(values, ReduceOp::Max);
    comm.allreduce(mins, ReduceOp::Min);
    EXPECT_FLOAT_EQ(values[0], static_cast<float>(n - 1));
    EXPECT_FLOAT_EQ(mins[1], static_cast<float>(-(n - 1)));
  });
}

TEST_P(CollectiveSizes, AllreduceSmallerThanRanks) {
  const int n = Size();
  Run([&](Communicator& comm) {
    std::vector<float> values{1.0f};  // fewer elements than ranks
    comm.allreduce(values, ReduceOp::Sum);
    EXPECT_FLOAT_EQ(values[0], static_cast<float>(n));
  });
}

TEST_P(CollectiveSizes, Allgather) {
  const int n = Size();
  Run([&](Communicator& comm) {
    const std::vector<float> mine{static_cast<float>(comm.rank()),
                                  static_cast<float>(comm.rank() * 10)};
    const std::vector<float> all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
    for (int r = 0; r < n; ++r) {
      EXPECT_FLOAT_EQ(all[2 * r], static_cast<float>(r));
      EXPECT_FLOAT_EQ(all[2 * r + 1], static_cast<float>(r * 10));
    }
  });
}

TEST_P(CollectiveSizes, BackToBackCollectivesDoNotCrossMatch) {
  const int n = Size();
  Run([&](Communicator& comm) {
    for (int iteration = 0; iteration < 20; ++iteration) {
      std::vector<float> values{static_cast<float>(comm.rank() + iteration)};
      comm.allreduce(values, ReduceOp::Sum);
      float expected = 0.0f;
      for (int r = 0; r < n; ++r) {
        expected += static_cast<float>(r + iteration);
      }
      ASSERT_FLOAT_EQ(values[0], expected) << "iteration " << iteration;
    }
  });
}

TEST_P(CollectiveSizes, ReduceToEveryRoot) {
  const int n = Size();
  Run([&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<float> values{static_cast<float>(comm.rank() + 1), 2.0f};
      const std::vector<float> saved = values;
      comm.reduce(root, values, ReduceOp::Sum);
      if (comm.rank() == root) {
        EXPECT_FLOAT_EQ(values[0], static_cast<float>(n * (n + 1)) / 2.0f);
        EXPECT_FLOAT_EQ(values[1], 2.0f * static_cast<float>(n));
      } else {
        EXPECT_EQ(values, saved);  // non-root buffers untouched
      }
    }
  });
}

TEST_P(CollectiveSizes, ReduceMax) {
  const int n = Size();
  Run([&](Communicator& comm) {
    std::vector<float> values{static_cast<float>(comm.rank())};
    comm.reduce(0, values, ReduceOp::Max);
    if (comm.rank() == 0) {
      EXPECT_FLOAT_EQ(values[0], static_cast<float>(n - 1));
    }
  });
}

TEST_P(CollectiveSizes, GatherAtEveryRoot) {
  const int n = Size();
  Run([&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      const std::vector<float> mine{static_cast<float>(comm.rank() * 2),
                                    static_cast<float>(comm.rank() * 2 + 1)};
      const std::vector<float> all = comm.gather(root, mine);
      if (comm.rank() == root) {
        ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
        for (int r = 0; r < n; ++r) {
          EXPECT_FLOAT_EQ(all[2 * r], static_cast<float>(r * 2));
          EXPECT_FLOAT_EQ(all[2 * r + 1], static_cast<float>(r * 2 + 1));
        }
      } else {
        EXPECT_TRUE(all.empty());
      }
    }
  });
}

TEST_P(CollectiveSizes, ScatterFromEveryRoot) {
  const int n = Size();
  Run([&](Communicator& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<float> send;
      if (comm.rank() == root) {
        for (int r = 0; r < n; ++r) {
          send.push_back(static_cast<float>(r * 10));
          send.push_back(static_cast<float>(r * 10 + 1));
        }
      }
      const std::vector<float> mine = comm.scatter(root, send, 2);
      ASSERT_EQ(mine.size(), 2u);
      EXPECT_FLOAT_EQ(mine[0], static_cast<float>(comm.rank() * 10));
      EXPECT_FLOAT_EQ(mine[1], static_cast<float>(comm.rank() * 10 + 1));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CollectiveSizes,
    ::testing::Combine(::testing::Values(BackendKind::InProc,
                                         BackendKind::Socket),
                       ::testing::Values(1, 2, 3, 4, 5, 8)),
    collective_param_name);

// ---- socket partial-I/O hardening ------------------------------------------

// The syscall shim (comm/socket_io_testing.hpp) lets these tests drive the
// backend's write_all/read_loop through the worst case the kernel can
// legally produce: every call either fails with a retryable errno or moves
// only a few bytes. Payload integrity end-to-end proves both loops resume
// correctly instead of dropping or duplicating bytes.

std::atomic<int> g_chaotic_send_calls{0};
std::atomic<int> g_chaotic_recv_calls{0};

ssize_t chaotic_send(int fd, const void* buf, std::size_t len, int flags) {
  switch (g_chaotic_send_calls.fetch_add(1) % 3) {
    case 0:
      errno = EINTR;
      return -1;
    case 1:
      errno = EAGAIN;
      return -1;
    default:
      return ::send(fd, buf, std::min<std::size_t>(len, 7), flags);
  }
}

ssize_t chaotic_recv(int fd, void* buf, std::size_t len, int flags) {
  switch (g_chaotic_recv_calls.fetch_add(1) % 3) {
    case 0:
      errno = EINTR;
      return -1;
    case 1:
      errno = EWOULDBLOCK;
      return -1;
    default:
      return ::recv(fd, buf, std::min<std::size_t>(len, 7), flags);
  }
}

/// Clears the process-global hooks even when an assertion throws.
struct SocketHookGuard {
  SocketHookGuard(ltfb::comm::testing::SocketSendHook send_hook,
                  ltfb::comm::testing::SocketRecvHook recv_hook) {
    ltfb::comm::testing::set_socket_io_hooks(send_hook, recv_hook);
  }
  ~SocketHookGuard() {
    ltfb::comm::testing::set_socket_io_hooks(nullptr, nullptr);
  }
};

TEST(SocketPartialIo, PayloadSurvivesInterruptedAndShortSyscalls) {
  g_chaotic_send_calls = 0;
  g_chaotic_recv_calls = 0;
  const SocketHookGuard guard(&chaotic_send, &chaotic_recv);

  World world(2, BackendKind::Socket);
  for (const std::exception_ptr& error :
       world.run_ranks([](Communicator& comm) {
         // Big enough that a single frame needs many resumed 7-byte
         // writes, patterned so any dropped/duplicated/reordered byte
         // breaks the comparison.
         Buffer payload(4096);
         for (std::size_t i = 0; i < payload.size(); ++i) {
           payload[i] = static_cast<std::uint8_t>(
               (i * 131 + static_cast<std::size_t>(comm.rank()) * 17) % 251);
         }
         const Buffer got =
             comm.sendrecv(1 - comm.rank(), /*tag=*/5, payload,
                           std::chrono::milliseconds(60'000));
         ASSERT_EQ(got.size(), payload.size());
         for (std::size_t i = 0; i < got.size(); ++i) {
           const auto want = static_cast<std::uint8_t>(
               (i * 131 + static_cast<std::size_t>(1 - comm.rank()) * 17) %
               251);
           ASSERT_EQ(got[i], want) << "byte " << i;
         }
       })) {
    if (error) std::rethrow_exception(error);
  }
  // The schedule guarantees two injected failures per completed transfer,
  // so a meaningful number of retries must have happened on both paths.
  EXPECT_GT(g_chaotic_send_calls.load(), 100);
  EXPECT_GT(g_chaotic_recv_calls.load(), 100);
}

TEST(SocketPartialIo, HooksClearBackToRealSyscalls) {
  {
    const SocketHookGuard guard(&chaotic_send, &chaotic_recv);
  }
  // With hooks cleared the transport must behave exactly as stock.
  const int before = g_chaotic_send_calls.load();
  World world(2, BackendKind::Socket);
  for (const std::exception_ptr& error :
       world.run_ranks([](Communicator& comm) {
         const Buffer got = comm.sendrecv(1 - comm.rank(), /*tag=*/6,
                                          Buffer{0x5a, 0xa5},
                                          std::chrono::milliseconds(60'000));
         ASSERT_EQ(got, (Buffer{0x5a, 0xa5}));
       })) {
    if (error) std::rethrow_exception(error);
  }
  EXPECT_EQ(g_chaotic_send_calls.load(), before);
}

// ---- multi-process socket transport ----------------------------------------

TEST(SpawnProcesses, FourRanksExchangeAndAgree) {
  const auto statuses = World::spawn_processes(4, [](Communicator& comm) {
    // Pairwise weight-style exchange (the LTFB tournament shape)...
    const int partner = comm.size() - 1 - comm.rank();
    const std::vector<float> own{static_cast<float>(comm.rank()), 2.0f};
    const Buffer raw =
        comm.sendrecv(partner, 5, Serializer::pack_floats(own),
                      std::chrono::milliseconds(30'000));
    const std::vector<float> theirs = Deserializer::unpack_floats(raw);
    if (theirs.size() != 2 ||
        theirs[0] != static_cast<float>(partner)) {
      throw std::runtime_error("exchange mismatch");
    }
    // ...then a collective across all four processes.
    std::vector<float> values{1.0f};
    comm.allreduce(values, ReduceOp::Sum);
    if (values[0] != 4.0f) throw std::runtime_error("allreduce mismatch");
    comm.barrier();
  });
  ASSERT_EQ(statuses.size(), 4u);
  for (const auto& status : statuses) {
    EXPECT_EQ(status.code, World::kExitClean) << "rank " << status.rank;
  }
}

TEST(SpawnProcesses, PeerDeathMapsToExitCodes) {
  // Rank 1 dies before sending; rank 0's recv must observe the failure
  // (EOF without a goodbye on the socket) and exit with the rank-failed
  // code, demonstrating cross-process connection supervision.
  const auto statuses = World::spawn_processes(2, [](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("simulated crash");
    (void)comm.recv(1, 3, std::chrono::milliseconds(30'000));
  });
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].code, World::kExitRankFailed);
  EXPECT_EQ(statuses[1].code, World::kExitError);
  EXPECT_FALSE(statuses[1].clean());
}

TEST(SpawnProcesses, ShrinkAgreesAcrossProcesses) {
  // Three processes rendezvous after one departs cleanly: the survivors
  // agree on the shrunken group and keep communicating on it.
  const auto statuses = World::spawn_processes(3, [](Communicator& comm) {
    if (comm.rank() == 2) return;  // departs cleanly (goodbye frames)
    Communicator survivors = comm.shrink(std::chrono::milliseconds(30'000));
    if (survivors.size() != 2) throw std::runtime_error("wrong survivors");
    std::vector<float> values{static_cast<float>(comm.rank())};
    survivors.allreduce(values, ReduceOp::Sum);
    if (values[0] != 1.0f) throw std::runtime_error("post-shrink allreduce");
  });
  for (const auto& status : statuses) {
    EXPECT_EQ(status.code, World::kExitClean) << "rank " << status.rank;
  }
}

}  // namespace
