// Unit and property tests for the synthetic JAG ICF simulator: determinism,
// physical scaling laws, the ignition cliff, and the image response to
// shape parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "jag/jag_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::jag;

JagConfig small_config() {
  JagConfig config;
  config.image_size = 8;
  return config;
}

std::array<double, kNumInputs> nominal() {
  // drive = 1.0, mid adiabat, round shell, mid phase.
  return {0.5, 0.5, 0.5, 0.5, 0.5};
}

TEST(JagConfig, FeatureArithmetic) {
  JagConfig config;
  config.image_size = 16;
  EXPECT_EQ(config.images_per_sample(), 12u);
  EXPECT_EQ(config.image_pixels(), 256u);
  EXPECT_EQ(config.image_features(), 3072u);
}

TEST(JagConfig, InvalidConfigThrows) {
  JagConfig config;
  config.image_size = 2;
  EXPECT_THROW(JagModel{config}, InvalidArgument);
  config = JagConfig{};
  config.noise_level = 0.9;
  EXPECT_THROW(JagModel{config}, InvalidArgument);
}

TEST(Jag, Deterministic) {
  const JagModel model(small_config());
  const auto a = model.run(nominal());
  const auto b = model.run(nominal());
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.images, b.images);
}

TEST(Jag, OutputShapes) {
  const JagModel model(small_config());
  const auto out = model.run(nominal());
  EXPECT_EQ(out.scalars.size(), kNumScalars);
  EXPECT_EQ(out.images.size(), small_config().image_features());
}

TEST(Jag, ScalarNamesComplete) {
  const auto& names = JagModel::scalar_names();
  EXPECT_EQ(names.size(), kNumScalars);
  for (const auto& name : names) {
    EXPECT_FALSE(name.empty());
  }
  EXPECT_EQ(names[0], "log10_yield");
}

TEST(Jag, InputRangesSane) {
  for (const auto& [lo, hi] : JagModel::input_ranges()) {
    EXPECT_LT(lo, hi);
  }
}

TEST(Jag, InputsAreClamped) {
  const JagModel model(small_config());
  std::array<double, kNumInputs> below{-1, -1, -1, -1, -1};
  std::array<double, kNumInputs> zero{0, 0, 0, 0, 0};
  EXPECT_EQ(model.run(below).scalars, model.run(zero).scalars);
}

// ---- scaling laws -----------------------------------------------------------

TEST(JagPhysics, VelocityIncreasesWithDrive) {
  const JagModel model(small_config());
  auto lo = nominal(), hi = nominal();
  lo[0] = 0.1;
  hi[0] = 0.9;
  EXPECT_LT(model.implosion_state(lo).velocity,
            model.implosion_state(hi).velocity);
}

TEST(JagPhysics, CompressionFallsWithAdiabat) {
  const JagModel model(small_config());
  auto lo = nominal(), hi = nominal();
  lo[1] = 0.1;
  hi[1] = 0.9;
  EXPECT_GT(model.implosion_state(lo).areal_density,
            model.implosion_state(hi).areal_density);
}

TEST(JagPhysics, AsymmetryDegradesShape) {
  const JagModel model(small_config());
  auto round = nominal();
  round[2] = 0.5;  // P2 = 0
  auto oblate = nominal();
  oblate[2] = 0.95;
  EXPECT_GT(model.implosion_state(round).shape_degradation,
            model.implosion_state(oblate).shape_degradation);
  EXPECT_LE(model.implosion_state(oblate).shape_degradation, 1.0);
  EXPECT_GT(model.implosion_state(oblate).shape_degradation, 0.0);
}

TEST(JagPhysics, IgnitionCliffIsSharp) {
  const JagModel model(small_config());
  // Scan drive at low adiabat; the yield amplification must transition
  // from near-1 to a large value over the scan.
  auto point = nominal();
  point[1] = 0.1;  // low adiabat compresses well
  point[2] = 0.5;
  point[3] = 0.5;
  double min_amp = 1e30, max_amp = 0.0;
  for (double drive = 0.0; drive <= 1.0; drive += 0.05) {
    point[0] = drive;
    const double amp = model.implosion_state(point).yield_amplification;
    min_amp = std::min(min_amp, amp);
    max_amp = std::max(max_amp, amp);
  }
  EXPECT_LT(min_amp, 2.0);
  EXPECT_GT(max_amp, 20.0);
}

TEST(JagPhysics, YieldMonotoneInDriveAtFixedShape) {
  const JagModel model(small_config());
  auto point = nominal();
  point[1] = 0.3;
  double previous = -1.0;
  for (double drive = 0.05; drive <= 1.0; drive += 0.05) {
    point[0] = drive;
    const double yield = model.implosion_state(point).yield;
    EXPECT_GT(yield, previous);
    previous = yield;
  }
}

TEST(JagPhysics, AsymmetryReducesYield) {
  const JagModel model(small_config());
  auto round = nominal(), perturbed = nominal();
  perturbed[2] = 0.95;
  perturbed[3] = 0.9;
  EXPECT_GT(model.implosion_state(round).yield,
            model.implosion_state(perturbed).yield);
}

TEST(JagPhysics, HotspotTemperaturePositive) {
  const JagModel model(small_config());
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::array<double, kNumInputs> point{};
    for (auto& c : point) c = rng.uniform();
    const auto state = model.implosion_state(point);
    EXPECT_GT(state.hotspot_temperature, 0.0);
    EXPECT_GT(state.velocity, 0.0);
    EXPECT_GT(state.areal_density, 0.0);
    EXPECT_GE(state.yield_amplification, 1.0);
  }
}

// ---- scalar outputs -----------------------------------------------------------

TEST(JagScalars, AllFiniteOverInputSpace) {
  const JagModel model(small_config());
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    std::array<double, kNumInputs> point{};
    for (auto& c : point) c = rng.uniform();
    const auto out = model.run(point);
    for (const float s : out.scalars) {
      EXPECT_TRUE(std::isfinite(s));
    }
  }
}

TEST(JagScalars, DriveMovesYieldStrongly) {
  // The paper: "varying the drive parameters resulted in highly non-linear
  // variations in the scalar performance metrics".
  const JagModel model(small_config());
  auto lo = nominal(), hi = nominal();
  lo[0] = 0.05;
  lo[1] = 0.1;
  hi[0] = 0.95;
  hi[1] = 0.1;
  const float yield_lo = model.run(lo).scalars[0];
  const float yield_hi = model.run(hi).scalars[0];
  EXPECT_GT(yield_hi - yield_lo, 1.0f);  // > 1 decade in log10 yield
}

TEST(JagScalars, PhaseAffectsViewBrightnessDifferently) {
  const JagModel model(small_config());
  auto a = nominal(), b = nominal();
  a[2] = 0.9;  // strong P2 so view effects are visible
  b[2] = 0.9;
  a[4] = 0.1;
  b[4] = 0.9;
  const auto oa = model.run(a), ob = model.run(b);
  // At least one of the three view-brightness scalars must differ.
  bool differs = false;
  for (std::size_t v = 9; v < 12; ++v) {
    if (std::abs(oa.scalars[v] - ob.scalars[v]) > 1e-4f) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---- images --------------------------------------------------------------------

TEST(JagImages, NonNegativeAndBounded) {
  const JagModel model(small_config());
  util::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    std::array<double, kNumInputs> point{};
    for (auto& c : point) c = rng.uniform();
    for (const float pixel : model.run(point).images) {
      EXPECT_GE(pixel, 0.0f);
      EXPECT_LT(pixel, 100.0f);
      EXPECT_TRUE(std::isfinite(pixel));
    }
  }
}

TEST(JagImages, HotterImplosionIsBrighter) {
  const JagModel model(small_config());
  auto cold = nominal(), hot = nominal();
  cold[0] = 0.1;
  hot[0] = 0.9;
  const auto out_cold = model.run(cold), out_hot = model.run(hot);
  double sum_cold = 0.0, sum_hot = 0.0;
  for (const float p : out_cold.images) sum_cold += p;
  for (const float p : out_hot.images) sum_hot += p;
  EXPECT_GT(sum_hot, sum_cold);
}

TEST(JagImages, ShapeParametersChangeImages) {
  // The paper: "varying the shape parameters resulted in major changes in
  // the X-ray images".
  const JagModel model(small_config());
  auto round = nominal(), perturbed = nominal();
  perturbed[2] = 0.95;
  const auto a = model.run(round), b = model.run(perturbed);
  double diff = 0.0, magnitude = 0.0;
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    diff += std::abs(a.images[i] - b.images[i]);
    magnitude += std::abs(a.images[i]);
  }
  EXPECT_GT(diff / magnitude, 0.05);  // >5% relative image change
}

TEST(JagImages, P2BreaksRotationalSymmetry) {
  JagConfig config = small_config();
  config.image_size = 16;
  const JagModel model(config);
  auto perturbed = nominal();
  perturbed[2] = 0.95;
  perturbed[4] = 0.0;
  const auto out = model.run(perturbed);
  // Compare horizontal vs vertical second moments of view 0, channel 0.
  const std::size_t size = config.image_size;
  double mxx = 0.0, myy = 0.0;
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const double cy = static_cast<double>(y) - 7.5;
      const double cx = static_cast<double>(x) - 7.5;
      const double w = out.images[y * size + x];
      mxx += w * cx * cx;
      myy += w * cy * cy;
    }
  }
  EXPECT_GT(std::abs(mxx - myy) / (mxx + myy), 0.01);
}

TEST(JagImages, ChannelsHaveDistinctProfiles) {
  const JagModel model(small_config());
  const auto out = model.run(nominal());
  const std::size_t pixels = small_config().image_pixels();
  // Channel 0 vs channel 3 of view 0 must differ (hyperspectral response).
  double diff = 0.0;
  for (std::size_t i = 0; i < pixels; ++i) {
    diff += std::abs(out.images[i] - out.images[3 * pixels + i]);
  }
  EXPECT_GT(diff, 0.01);
}

TEST(JagImages, ViewsSeeDifferentProjections) {
  const JagModel model(small_config());
  auto perturbed = nominal();
  perturbed[2] = 0.9;
  const auto out = model.run(perturbed);
  const std::size_t view_stride =
      small_config().num_channels * small_config().image_pixels();
  double diff = 0.0;
  for (std::size_t i = 0; i < small_config().image_pixels(); ++i) {
    diff += std::abs(out.images[i] - out.images[view_stride + i]);
  }
  EXPECT_GT(diff, 0.01);
}

// ---- pseudo-noise --------------------------------------------------------------

TEST(JagNoise, ZeroNoiseIsExactlyClean) {
  JagConfig noisy = small_config();
  noisy.noise_level = 0.05;
  const JagModel clean_model(small_config());
  const JagModel noisy_model(noisy);
  const auto a = clean_model.run(nominal());
  const auto b = noisy_model.run(nominal());
  // Noise changes scalars but stays bounded by the configured level-ish.
  bool changed = false;
  for (std::size_t i = 0; i < kNumScalars; ++i) {
    if (a.scalars[i] != b.scalars[i]) changed = true;
    if (std::abs(a.scalars[i]) > 1e-6f) {
      EXPECT_LT(std::abs(b.scalars[i] / a.scalars[i] - 1.0f), 0.08f);
    }
  }
  EXPECT_TRUE(changed);
}

TEST(JagNoise, NoiseIsDeterministic) {
  JagConfig config = small_config();
  config.noise_level = 0.05;
  const JagModel model(config);
  EXPECT_EQ(model.run(nominal()).scalars, model.run(nominal()).scalars);
}

}  // namespace
