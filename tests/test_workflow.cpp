// Tests for the workflow engine (Merlin substitute), the experiment-design
// samplers, and the ensemble runner.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>

#include "datastore/bundle_catalog.hpp"
#include "telemetry/telemetry.hpp"
#include "workflow/ensemble.hpp"
#include "workflow/sampler.hpp"
#include "workflow/workflow.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::workflow;

// ---- samplers -------------------------------------------------------------------

TEST(Sampler, UniformDeterministicPerIndex) {
  UniformSampler sampler(5);
  EXPECT_EQ(sampler.point(3), sampler.point(3));
  EXPECT_NE(sampler.point(3), sampler.point(4));
}

TEST(Sampler, AllSamplersInUnitCube) {
  const UniformSampler uniform(1);
  const SpectralSampler spectral;
  const HaltonSampler halton;
  for (const Sampler* sampler :
       std::initializer_list<const Sampler*>{&uniform, &spectral, &halton}) {
    for (std::size_t i = 0; i < 500; ++i) {
      for (const double c : sampler->point(i)) {
        EXPECT_GE(c, 0.0) << sampler->name() << " index " << i;
        EXPECT_LT(c, 1.0) << sampler->name() << " index " << i;
      }
    }
  }
}

TEST(Sampler, PointsBatchMatchesPointwise) {
  SpectralSampler sampler;
  const auto batch = sampler.points(10, 5);
  ASSERT_EQ(batch.size(), 10u);
  EXPECT_EQ(batch[0], sampler.point(5));
  EXPECT_EQ(batch[9], sampler.point(14));
}

TEST(Sampler, SpectralBeatsUniformOnMinDistance) {
  // The spectral (low-discrepancy) design must spread points much better
  // than i.i.d. sampling — that is its purpose in the paper's DOE.
  const std::size_t n = 200;
  const SpectralSampler spectral;
  const UniformSampler uniform(3);
  const double d_spectral = min_pairwise_distance(spectral.points(n));
  const double d_uniform = min_pairwise_distance(uniform.points(n));
  EXPECT_GT(d_spectral, 2.0 * d_uniform);
}

TEST(Sampler, SpectralBeatsUniformOnDiscrepancy) {
  const std::size_t n = 512;
  const SpectralSampler spectral;
  const UniformSampler uniform(7);
  const double disc_spectral =
      box_discrepancy(spectral.points(n), 200, 99);
  const double disc_uniform = box_discrepancy(uniform.points(n), 200, 99);
  EXPECT_LT(disc_spectral, disc_uniform);
}

TEST(Sampler, SpectralSeedRotatesSequence) {
  const SpectralSampler a(1), b(2);
  EXPECT_NE(a.point(0), b.point(0));
  // Rotation preserves the low-discrepancy structure.
  EXPECT_GT(min_pairwise_distance(b.points(100)), 0.0);
}

TEST(Sampler, HaltonFirstPointsKnown) {
  const HaltonSampler halton;
  const auto p0 = halton.point(0);  // index 1 in each base
  EXPECT_NEAR(p0[0], 0.5, 1e-12);        // base 2
  EXPECT_NEAR(p0[1], 1.0 / 3.0, 1e-12);  // base 3
  EXPECT_NEAR(p0[2], 0.2, 1e-12);        // base 5
}

TEST(Sampler, DiagnosticsRejectDegenerateInput) {
  EXPECT_THROW(min_pairwise_distance({}), InvalidArgument);
  EXPECT_THROW(box_discrepancy({}, 10, 1), InvalidArgument);
}

// ---- workflow engine -----------------------------------------------------------------

TEST(Workflow, RunsAllIndependentTasks) {
  WorkflowEngine engine(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    engine.add_task("t" + std::to_string(i), [&counter] { ++counter; });
  }
  EXPECT_TRUE(engine.run());
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(engine.count_with_status(TaskStatus::Succeeded), 20u);
}

TEST(Workflow, RespectsDependencies) {
  WorkflowEngine engine(4);
  std::atomic<int> stage{0};
  const TaskId a = engine.add_task("a", [&] {
    int expected = 0;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 1));
  });
  const TaskId b = engine.add_task(
      "b",
      [&] {
        int expected = 1;
        EXPECT_TRUE(stage.compare_exchange_strong(expected, 2));
      },
      {a});
  engine.add_task(
      "c",
      [&] {
        int expected = 2;
        EXPECT_TRUE(stage.compare_exchange_strong(expected, 3));
      },
      {b});
  EXPECT_TRUE(engine.run());
  EXPECT_EQ(stage.load(), 3);
}

TEST(Workflow, DiamondDependency) {
  WorkflowEngine engine(4);
  std::atomic<int> finished{0};
  const TaskId root = engine.add_task("root", [&] { ++finished; });
  const TaskId left = engine.add_task("left", [&] { ++finished; }, {root});
  const TaskId right = engine.add_task("right", [&] { ++finished; }, {root});
  engine.add_task(
      "join", [&] { EXPECT_EQ(finished.load(), 3); }, {left, right});
  EXPECT_TRUE(engine.run());
}

TEST(Workflow, FailureSkipsDependents) {
  WorkflowEngine engine(2);
  const TaskId bad =
      engine.add_task("bad", [] { throw std::runtime_error("exploded"); });
  const TaskId child = engine.add_task("child", [] {}, {bad});
  const TaskId grandchild = engine.add_task("grandchild", [] {}, {child});
  const TaskId independent = engine.add_task("independent", [] {});
  EXPECT_FALSE(engine.run());
  EXPECT_EQ(engine.status(bad), TaskStatus::Failed);
  EXPECT_EQ(engine.error(bad), "exploded");
  EXPECT_EQ(engine.status(child), TaskStatus::Skipped);
  EXPECT_EQ(engine.status(grandchild), TaskStatus::Skipped);
  EXPECT_EQ(engine.status(independent), TaskStatus::Succeeded);
}

TEST(Workflow, UnknownDependencyThrows) {
  WorkflowEngine engine(1);
  EXPECT_THROW(engine.add_task("x", [] {}, {5}), InvalidArgument);
}

TEST(Workflow, TaskNamesRetained) {
  WorkflowEngine engine(1);
  const TaskId id = engine.add_task("my-task", [] {});
  EXPECT_EQ(engine.task_name(id), "my-task");
  EXPECT_EQ(engine.status(id), TaskStatus::Pending);
}

// Regression: task_count() used to read tasks_.size() without the engine
// mutex, racing status writes on worker threads. It locks now, so polling
// from another thread while the DAG executes must be safe and stable.
TEST(Workflow, TaskCountReadableWhileRunning) {
  WorkflowEngine engine(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    engine.add_task("t" + std::to_string(i), [&done] { ++done; });
  }
  std::atomic<bool> polling{true};
  std::atomic<int> bad_counts{0};
  std::thread poller([&] {
    while (polling.load()) {
      if (engine.task_count() != 200u) bad_counts.fetch_add(1);
    }
  });
  EXPECT_TRUE(engine.run());
  polling.store(false);
  poller.join();
  EXPECT_EQ(bad_counts.load(), 0);
  EXPECT_EQ(done.load(), 200);
}

// Regression: submit_ready used to capture a reference to tasks_[id].work
// inside the pool lambda; a concurrent vector reallocation (or status write)
// invalidated it. The work callable is copied under the lock now, and the
// submitter's telemetry rank binding travels with the task (same idiom as
// ComputePool::run_tasks), including across dependency cascades submitted
// from worker threads.
TEST(Workflow, TasksInheritSubmitterRankBinding) {
  const telemetry::RankBinding bind_rank(2);
  WorkflowEngine engine(3);
  std::atomic<int> mismatches{0};
  TaskId prev = engine.add_task("root", [&] {
    if (telemetry::bound_rank() != 2) mismatches.fetch_add(1);
  });
  for (int i = 0; i < 40; ++i) {
    const auto task = [&mismatches] {
      if (telemetry::bound_rank() != 2) mismatches.fetch_add(1);
    };
    // Mix independent tasks (submitted from this bound thread) with a chain
    // (submitted from pool workers as dependencies resolve).
    if (i % 2 == 0) {
      prev = engine.add_task("chain" + std::to_string(i), task, {prev});
    } else {
      engine.add_task("free" + std::to_string(i), task);
    }
  }
  EXPECT_TRUE(engine.run());
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Workflow, EmptyWorkflowSucceeds) {
  WorkflowEngine engine(1);
  EXPECT_TRUE(engine.run());
}

TEST(Workflow, StatusToString) {
  EXPECT_STREQ(to_string(TaskStatus::Succeeded), "succeeded");
  EXPECT_STREQ(to_string(TaskStatus::Skipped), "skipped");
}

// ---- ensemble runner ------------------------------------------------------------------

TEST(Ensemble, WritesSequentialBundles) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const SpectralSampler sampler;

  EnsembleConfig ensemble;
  ensemble.total_samples = 25;
  ensemble.samples_per_file = 10;
  ensemble.workers = 2;
  ensemble.output_directory =
      std::filesystem::temp_directory_path() / "ltfb_ensemble_test";
  std::filesystem::remove_all(ensemble.output_directory);

  const EnsembleResult result = run_ensemble(model, sampler, ensemble);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.samples_written, 25u);
  ASSERT_EQ(result.bundle_paths.size(), 3u);  // 10 + 10 + 5

  // The catalog must see sequential ids and the right schema.
  datastore::BundleCatalog catalog(result.bundle_paths);
  EXPECT_EQ(catalog.total_samples(), 25u);
  EXPECT_EQ(catalog.schema().image_width, config.image_features());
  const data::Sample sample = catalog.read(17);
  EXPECT_EQ(sample.id, 17u);
  // The stored input must be the sampler's design point.
  const Point point = sampler.point(17);
  for (std::size_t k = 0; k < jag::kNumInputs; ++k) {
    EXPECT_NEAR(sample.input[k], static_cast<float>(point[k]), 1e-6f);
  }
  // And the payload must be the simulator's output for that point.
  const auto expected = model.run(point);
  EXPECT_EQ(sample.scalars[0], expected.scalars[0]);
  EXPECT_EQ(sample.images, expected.images);
}

TEST(Ensemble, DeterministicAcrossRuns) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const SpectralSampler sampler;

  auto run_once = [&](const std::string& tag) {
    EnsembleConfig ensemble;
    ensemble.total_samples = 12;
    ensemble.samples_per_file = 4;
    ensemble.workers = 3;
    ensemble.output_directory =
        std::filesystem::temp_directory_path() / ("ltfb_ens_" + tag);
    std::filesystem::remove_all(ensemble.output_directory);
    return run_ensemble(model, sampler, ensemble);
  };
  const auto a = run_once("a");
  const auto b = run_once("b");
  datastore::BundleCatalog ca(a.bundle_paths), cb(b.bundle_paths);
  for (data::SampleId id = 0; id < 12; ++id) {
    EXPECT_EQ(ca.read(id).scalars, cb.read(id).scalars);
  }
}

TEST(Ensemble, InvalidConfigThrows) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const UniformSampler sampler(1);
  EnsembleConfig ensemble;  // no output directory
  ensemble.total_samples = 5;
  EXPECT_THROW(run_ensemble(model, sampler, ensemble), InvalidArgument);
}

}  // namespace
