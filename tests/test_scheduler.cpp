// Elastic LTFB scheduler suite (DESIGN.md §14): churn-verb grammar, the
// envelope/ack wire format, boundary planning (churn lowering, infeasible
// skips, fault-driven removals, straggler policy), protocol idempotency
// under retries, churn-invariant datastore shard migration, and the
// acceptance property of the whole stack — a seeded grow + shrink +
// migrate schedule over a 4-rank run replays to bit-identical RoundRecord
// history, explicit joined/left markers included.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>

#include "comm/communicator.hpp"
#include "core/scheduler.hpp"
#include "data/bundle.hpp"
#include "datastore/data_store.hpp"
#include "jag/jag_model.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;
using comm::FaultSchedule;
using std::chrono::milliseconds;

constexpr milliseconds kTimeout{1500};

// ---- fixtures ------------------------------------------------------------------------

gan::CycleGanConfig tiny_config() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

ElasticScheduler::Options options_for(int max_trainers) {
  ElasticScheduler::Options options;
  options.ack_deadline = kTimeout;
  options.max_trainers = max_trainers;
  return options;
}

const std::vector<ClusterMetricsAggregator::RankStepStat> kNoSteps;

// ---- churn grammar -------------------------------------------------------------------

TEST(ChurnGrammar, ParsesJoinLeaveMigrate) {
  const auto schedule = FaultSchedule::parse("join:3@2; leave:1@4 ;migrate:0@5:3");
  ASSERT_EQ(schedule.actions().size(), 3u);
  EXPECT_TRUE(schedule.has_churn());

  const auto at2 = schedule.churn_at(2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0].kind, comm::FaultAction::Kind::Join);
  EXPECT_EQ(at2[0].rank, 3);  // trainer id for churn verbs

  const auto at5 = schedule.churn_at(5);
  ASSERT_EQ(at5.size(), 1u);
  EXPECT_EQ(at5[0].kind, comm::FaultAction::Kind::Migrate);
  EXPECT_EQ(at5[0].delay_ms, 3u);  // destination world rank

  EXPECT_TRUE(schedule.churn_at(3).empty());
}

TEST(ChurnGrammar, RoundTripsThroughStr) {
  const std::string spec = "join:3@2;leave:1@4;migrate:0@5:3;kill:2@40";
  const auto schedule = FaultSchedule::parse(spec);
  EXPECT_EQ(schedule.str(), spec);
  EXPECT_EQ(FaultSchedule::parse(schedule.str()).str(), spec);
}

TEST(ChurnGrammar, ChurnEventsNeverMatchMessageActions) {
  // Churn verbs address trainers and rounds; they must be invisible to
  // the comm layer's per-rank message interception.
  const auto schedule = FaultSchedule::parse("join:0@1;leave:1@2;migrate:2@3:0");
  for (int rank = 0; rank < 4; ++rank) {
    for (std::uint64_t message = 0; message < 5; ++message) {
      EXPECT_EQ(schedule.message_action(rank, message), nullptr)
          << "rank " << rank << " message " << message;
    }
  }
  EXPECT_FALSE(schedule.kill_op(0).has_value());
}

TEST(ChurnGrammar, RejectsMalformedChurnSpecs) {
  EXPECT_THROW(FaultSchedule::parse("join:1"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("migrate:1@2"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("leave:x@2"), InvalidArgument);
}

// ---- envelope/ack wire format --------------------------------------------------------

SchedulerEnvelope sample_envelope() {
  SchedulerEnvelope envelope;
  envelope.seq = 9;
  envelope.round = 4;
  envelope.roster_trainers = {0, 1, 3};
  envelope.roster_hosts = {0, 2, 3};
  SchedulerCommand migrate;
  migrate.kind = SchedulerCommandKind::MigrateTrainer;
  migrate.trainer_id = 1;
  migrate.src_rank = 1;
  migrate.dst_rank = 2;
  envelope.commands.push_back(migrate);
  SchedulerCommand grow;
  grow.kind = SchedulerCommandKind::Grow;
  grow.trainer_id = 3;
  grow.dst_rank = 3;
  envelope.commands.push_back(grow);
  return envelope;
}

TEST(SchedulerWire, EnvelopeRoundTrips) {
  const SchedulerEnvelope sent = sample_envelope();
  const SchedulerEnvelope got =
      decode_scheduler_envelope(encode_scheduler_envelope(sent));
  EXPECT_EQ(got.seq, sent.seq);
  EXPECT_EQ(got.round, sent.round);
  EXPECT_EQ(got.roster_trainers, sent.roster_trainers);
  EXPECT_EQ(got.roster_hosts, sent.roster_hosts);
  ASSERT_EQ(got.commands.size(), sent.commands.size());
  for (std::size_t i = 0; i < got.commands.size(); ++i) {
    EXPECT_EQ(got.commands[i].kind, sent.commands[i].kind);
    EXPECT_EQ(got.commands[i].trainer_id, sent.commands[i].trainer_id);
    EXPECT_EQ(got.commands[i].src_rank, sent.commands[i].src_rank);
    EXPECT_EQ(got.commands[i].dst_rank, sent.commands[i].dst_rank);
  }
}

TEST(SchedulerWire, AckRoundTrips) {
  SchedulerAck sent;
  sent.seq = 9;
  sent.rank = 2;
  sent.statuses = {SchedulerAckStatus::Ok, SchedulerAckStatus::Failed};
  sent.details = {"", "migration payload lost"};
  const SchedulerAck got = decode_scheduler_ack(encode_scheduler_ack(sent));
  EXPECT_EQ(got.seq, sent.seq);
  EXPECT_EQ(got.rank, sent.rank);
  EXPECT_EQ(got.statuses, sent.statuses);
  EXPECT_EQ(got.details, sent.details);
}

TEST(SchedulerWire, TruncatedEnvelopeAlwaysFormatError) {
  const comm::Buffer bytes = encode_scheduler_envelope(sample_envelope());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const comm::Buffer cut(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_scheduler_envelope(cut), FormatError)
        << "truncated to " << keep << " of " << bytes.size();
  }
}

TEST(SchedulerWire, ByteFlippedEnvelopeNeverCrashes) {
  const comm::Buffer pristine = encode_scheduler_envelope(sample_envelope());
  comm::Buffer bytes = pristine;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    bytes[pos] ^= 0xff;
    try {
      (void)decode_scheduler_envelope(bytes);
    } catch (const FormatError&) {
      // The one sanctioned rejection.
    }
    bytes[pos] = pristine[pos];
  }
}

TEST(SchedulerWire, TruncatedAckThrowsFormatError) {
  SchedulerAck ack;
  ack.seq = 1;
  ack.rank = 3;
  ack.statuses = {SchedulerAckStatus::Ok};
  ack.details = {""};
  const comm::Buffer bytes = encode_scheduler_ack(ack);
  for (std::size_t keep = 0; keep + 1 < bytes.size(); ++keep) {
    const comm::Buffer cut(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)decode_scheduler_ack(cut), FormatError);
  }
}

// ---- boundary planning ---------------------------------------------------------------
//
// plan_boundary needs only rank 0's communicator; the other ranks of the
// world just park so the world can be constructed.

void on_rank0(int world_size, const std::function<void(comm::Communicator&)>& fn) {
  comm::World world(world_size);
  for (const std::exception_ptr& error :
       world.run_ranks([&](comm::Communicator& comm) {
         if (comm.rank() == 0) fn(comm);
       })) {
    if (error) std::rethrow_exception(error);
  }
}

TEST(BoundaryPlan, JoinLowersToGrowOnLowestIdleRank) {
  on_rank0(4, [](comm::Communicator& comm) {
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}},
                           FaultSchedule().join(2, 1), options_for(4));
    const auto quiet = sched.plan_boundary(0, kNoSteps);
    EXPECT_TRUE(quiet.joined.empty());
    EXPECT_TRUE(quiet.left.empty());

    const auto plan = sched.plan_boundary(1, kNoSteps);
    ASSERT_EQ(plan.joined, std::vector<int>{2});
    EXPECT_EQ(sched.roster().at(2), 2);  // lowest idle alive rank
    EXPECT_EQ(sched.joins(), 1u);
    // The Grow command targets the new host's envelope.
    bool found = false;
    for (std::size_t i = 0; i < plan.envelopes.size(); ++i) {
      for (const SchedulerCommand& cmd : plan.envelopes[i].commands) {
        if (cmd.kind == SchedulerCommandKind::Grow) {
          EXPECT_EQ(plan.envelope_ranks[i], 2);
          EXPECT_EQ(cmd.trainer_id, 2);
          EXPECT_EQ(cmd.dst_rank, 2);
          found = true;
        }
      }
    }
    EXPECT_TRUE(found);
    // Every envelope carries the full post-boundary roster.
    for (const SchedulerEnvelope& envelope : plan.envelopes) {
      EXPECT_EQ(envelope.roster_trainers, (std::vector<int>{0, 1, 2}));
    }
  });
}

TEST(BoundaryPlan, LeaveLowersToShrinkAndFreesTheRank) {
  on_rank0(4, [](comm::Communicator& comm) {
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}, {2, 2}},
                           FaultSchedule().leave(1, 1), options_for(4));
    const auto plan = sched.plan_boundary(1, kNoSteps);
    ASSERT_EQ(plan.left, std::vector<int>{1});
    EXPECT_EQ(sched.roster().count(1), 0u);
    EXPECT_FALSE(sched.rank_hosting(1));
    EXPECT_EQ(sched.leaves(), 1u);
  });
}

TEST(BoundaryPlan, MigrateTargetsBothEndsAndMovesHost) {
  on_rank0(4, [](comm::Communicator& comm) {
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}},
                           FaultSchedule().migrate(1, 1, 3), options_for(4));
    const auto plan = sched.plan_boundary(1, kNoSteps);
    EXPECT_TRUE(plan.joined.empty());
    EXPECT_TRUE(plan.left.empty());  // membership unchanged
    EXPECT_EQ(sched.roster().at(1), 3);
    EXPECT_EQ(sched.migrations(), 1u);
    std::set<int> targets;
    for (std::size_t i = 0; i < plan.envelopes.size(); ++i) {
      for (const SchedulerCommand& cmd : plan.envelopes[i].commands) {
        if (cmd.kind == SchedulerCommandKind::MigrateTrainer) {
          EXPECT_EQ(cmd.src_rank, 1);
          EXPECT_EQ(cmd.dst_rank, 3);
          targets.insert(plan.envelope_ranks[i]);
        }
      }
    }
    EXPECT_EQ(targets, (std::set<int>{1, 3}));
  });
}

TEST(BoundaryPlan, InfeasibleEventsAreSkippedNotFatal) {
  on_rank0(2, [](comm::Communicator& comm) {
    // join of a trainer already present; leave of an unknown trainer;
    // migrate onto an occupied rank — all at the same boundary.
    const auto churn = FaultSchedule()
                           .join(0, 1)
                           .leave(7, 1)
                           .migrate(0, 1, 1);
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}}, churn, options_for(2));
    const auto plan = sched.plan_boundary(1, kNoSteps);
    EXPECT_EQ(plan.skipped_events, 3u);
    EXPECT_TRUE(plan.joined.empty());
    EXPECT_TRUE(plan.left.empty());
    EXPECT_EQ(sched.roster().at(0), 0);
    EXPECT_EQ(sched.roster().at(1), 1);
  });
}

TEST(BoundaryPlan, PendingLostTrainerDrainsIntoLeftList) {
  on_rank0(3, [](comm::Communicator& comm) {
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}, {2, 2}}, FaultSchedule(),
                           options_for(3));
    sched.note_lost_trainer(2);
    EXPECT_TRUE(sched.trainer_pending_lost(2));
    const auto plan = sched.plan_boundary(1, kNoSteps);
    ASSERT_EQ(plan.left, std::vector<int>{2});
    EXPECT_FALSE(sched.trainer_pending_lost(2));
    EXPECT_EQ(sched.roster().count(2), 0u);
  });
}

TEST(BoundaryPlan, StragglerPolicyMigratesSlowestHostToIdleRank) {
  on_rank0(4, [](comm::Communicator& comm) {
    auto options = options_for(4);
    options.straggler_policy = true;
    options.straggler_ratio = 1.5;
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}, {2, 2}}, FaultSchedule(),
                           options);
    std::vector<ClusterMetricsAggregator::RankStepStat> steps(3);
    for (int r = 0; r < 3; ++r) {
      steps[static_cast<std::size_t>(r)].world_rank = r;
      steps[static_cast<std::size_t>(r)].step_count = 4;
      steps[static_cast<std::size_t>(r)].step_mean_s = 0.01;
    }
    steps[1].step_mean_s = 0.2;  // rank 1 is 20x slower than its peers
    const auto plan = sched.plan_boundary(1, steps);
    EXPECT_TRUE(plan.joined.empty());
    EXPECT_TRUE(plan.left.empty());  // placement only, never membership
    EXPECT_EQ(sched.roster().at(1), 3);  // moved to the idle rank
    EXPECT_EQ(sched.migrations(), 1u);
  });
}

TEST(BoundaryPlan, StragglerPolicyQuietWhenRatioNotExceeded) {
  on_rank0(4, [](comm::Communicator& comm) {
    auto options = options_for(4);
    options.straggler_policy = true;
    options.straggler_ratio = 1.5;
    ElasticScheduler sched(comm, {{0, 0}, {1, 1}, {2, 2}}, FaultSchedule(),
                           options);
    std::vector<ClusterMetricsAggregator::RankStepStat> steps(3);
    for (int r = 0; r < 3; ++r) {
      steps[static_cast<std::size_t>(r)].world_rank = r;
      steps[static_cast<std::size_t>(r)].step_count = 4;
      steps[static_cast<std::size_t>(r)].step_mean_s = 0.01;
    }
    const auto plan = sched.plan_boundary(1, steps);
    EXPECT_EQ(sched.migrations(), 0u);
    EXPECT_EQ(sched.roster().at(1), 1);
    EXPECT_EQ(plan.skipped_events, 0u);
  });
}

// ---- protocol idempotency ------------------------------------------------------------

TEST(SchedulerProtocol, DuplicateEnvelopeAcksAlreadyApplied) {
  comm::World world(2);
  for (const std::exception_ptr& error :
       world.run_ranks([](comm::Communicator& comm) {
         const std::uint64_t round = 0;
         if (comm.rank() == 0) {
           SchedulerEnvelope envelope;
           envelope.seq = 1;
           envelope.round = round;
           envelope.roster_trainers = {0, 1};
           envelope.roster_hosts = {0, 1};
           envelope.commands.emplace_back();  // one NoOp => one ack status
           const int cmd_tag = sched_cmd_tag(round);
           const int ack_tag = sched_ack_tag(round);
           // Original + retry of the same seq, then the next boundary's
           // envelope on the same round tag.
           comm.send(1, cmd_tag, encode_scheduler_envelope(envelope));
           comm.send(1, cmd_tag, encode_scheduler_envelope(envelope));
           SchedulerEnvelope next = envelope;
           next.seq = 2;
           comm.send(1, cmd_tag, encode_scheduler_envelope(next));

           const SchedulerAck first =
               decode_scheduler_ack(comm.recv(1, ack_tag, kTimeout));
           EXPECT_EQ(first.seq, 1u);
           ASSERT_EQ(first.statuses.size(), 1u);
           EXPECT_EQ(first.statuses[0], SchedulerAckStatus::Ok);

           const SchedulerAck dup =
               decode_scheduler_ack(comm.recv(1, ack_tag, kTimeout));
           EXPECT_EQ(dup.seq, 1u);
           ASSERT_EQ(dup.statuses.size(), 1u);
           EXPECT_EQ(dup.statuses[0], SchedulerAckStatus::AlreadyApplied);

           const SchedulerAck second =
               decode_scheduler_ack(comm.recv(1, ack_tag, kTimeout));
           EXPECT_EQ(second.seq, 2u);
         } else {
           SchedulerClient client(comm, 0, kTimeout);
           const SchedulerEnvelope first = client.await_boundary(round);
           EXPECT_EQ(first.seq, 1u);
           client.ack(first, {SchedulerAckStatus::Ok}, {""});
           // The retry must be absorbed internally (AlreadyApplied ack,
           // no reapply): the next fresh envelope is seq 2.
           const SchedulerEnvelope second = client.await_boundary(round);
           EXPECT_EQ(second.seq, 2u);
           client.ack(second, {SchedulerAckStatus::Ok}, {""});
         }
       })) {
    if (error) std::rethrow_exception(error);
  }
}

// ---- datastore shard migration -------------------------------------------------------

TEST(ShardMigration, ManifestMovesToNewOwnerAndFetchStillServes) {
  const auto dir =
      std::filesystem::temp_directory_path() / "ltfb_sched_shard";
  std::filesystem::remove_all(dir);
  data::SampleSchema schema;
  schema.input_width = 5;
  schema.scalar_width = 15;
  schema.image_width = 6;
  std::vector<data::Sample> samples;
  for (data::SampleId id = 0; id < 24; ++id) {
    data::Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, static_cast<float>(id) * 2.0f);
    sample.images.assign(6, static_cast<float>(id) * 3.0f);
    samples.push_back(std::move(sample));
  }
  const auto paths = data::write_bundle_set(dir, schema, samples, 4);
  datastore::BundleCatalog catalog(paths);

  std::mutex mutex;
  std::map<int, std::vector<data::SampleId>> manifests;
  comm::World::run(2, [&](comm::Communicator& comm) {
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded);
    store.preload();
    {
      const std::scoped_lock lock(mutex);
      manifests[comm.rank()] = store.shard_manifest();
    }
    comm.barrier();
    // Rank 0 hands its whole shard to rank 1 — every rank applies the
    // identical reassignment (the scheduler's roster broadcast is what
    // guarantees the agreement in the real driver).
    std::vector<data::SampleId> rank0_shard;
    {
      const std::scoped_lock lock(mutex);
      rank0_shard = manifests.at(0);
    }
    store.migrate_shard(rank0_shard, 1);
    if (comm.rank() == 0) {
      EXPECT_TRUE(store.shard_manifest().empty());
    } else {
      EXPECT_EQ(store.shard_manifest().size(), 24u);
    }
    // The directory stays convergent: any rank can still fetch anything.
    std::vector<data::SampleId> wanted{0, 7, 13, 23};
    const auto got = store.fetch(wanted);
    ASSERT_EQ(got.size(), wanted.size());
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      EXPECT_EQ(got[i].id, wanted[i]);
    }
  });
}

// ---- the acceptance property ---------------------------------------------------------

/// Runs a 4-rank elastic tournament under `churn` and returns rank 0's
/// authoritative history plus outcome counters.
ElasticLtfbOutcome run_elastic(const data::Dataset& dataset,
                               const data::SplitIndices& splits,
                               const FaultSchedule& churn) {
  ElasticLtfbConfig config;
  config.batch_size = 16;
  config.ltfb.steps_per_round = 2;
  config.ltfb.rounds = 6;
  config.ltfb.pretrain_steps = 2;
  config.model = tiny_config();
  config.seed = 77;
  config.initial_trainers = 3;
  config.max_trainers = 4;
  config.comm_timeout = kTimeout;
  config.churn = churn;
  config.churn_from_env = false;

  ElasticLtfbOutcome scheduler_outcome;
  std::mutex mutex;
  comm::World world(4);
  for (const std::exception_ptr& error :
       world.run_ranks([&](comm::Communicator& comm) {
         const auto outcome =
             run_elastic_ltfb(comm, dataset, splits, config);
         EXPECT_FALSE(outcome.aborted) << "rank " << outcome.rank;
         if (outcome.scheduler) {
           const std::scoped_lock lock(mutex);
           scheduler_outcome = outcome;
         }
       })) {
    if (error) std::rethrow_exception(error);
  }
  return scheduler_outcome;
}

void expect_identical_history(const std::vector<RoundRecord>& a,
                              const std::vector<RoundRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].round, b[r].round);
    ASSERT_EQ(a[r].stats.size(), b[r].stats.size()) << "round " << r;
    for (std::size_t s = 0; s < a[r].stats.size(); ++s) {
      const TrainerRoundStat& x = a[r].stats[s];
      const TrainerRoundStat& y = b[r].stats[s];
      EXPECT_EQ(x.trainer_id, y.trainer_id);
      EXPECT_EQ(x.partner_id, y.partner_id);
      // Bit-identical, not approximately equal: the elasticity contract
      // says churn replays the exact floating-point trajectory.
      EXPECT_EQ(x.own_score, y.own_score) << "round " << r << " stat " << s;
      EXPECT_EQ(x.partner_score, y.partner_score);
      EXPECT_EQ(x.adopted_partner, y.adopted_partner);
      EXPECT_EQ(x.partner_failed, y.partner_failed);
    }
    EXPECT_EQ(a[r].joined, b[r].joined) << "round " << r;
    EXPECT_EQ(a[r].left, b[r].left) << "round " << r;
  }
}

TEST(ElasticDeterminism, ChurnScheduleReplaysBitIdentically) {
  const data::Dataset dataset = tiny_dataset(200, 41);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 42);
  // Grow, shrink, AND a live migration in one schedule — the acceptance
  // criterion of DESIGN.md §14.
  // Trainer 3 joins on the idle rank 3 at round 2; trainer 1 leaves at
  // round 4 freeing rank 1; trainer 0 then migrates onto it at round 5.
  const auto churn = FaultSchedule::parse("join:3@2;leave:1@4;migrate:0@5:1");

  const auto first = run_elastic(dataset, splits, churn);
  const auto second = run_elastic(dataset, splits, churn);

  ASSERT_EQ(first.history.size(), 6u);
  expect_identical_history(first.history, second.history);

  // The churn markers land exactly where the schedule fired.
  EXPECT_EQ(first.history[2].joined, std::vector<int>{3});
  EXPECT_EQ(first.history[4].left, std::vector<int>{1});
  for (std::size_t r = 0; r < first.history.size(); ++r) {
    if (r != 2) {
      EXPECT_TRUE(first.history[r].joined.empty()) << r;
    }
    if (r != 4) {
      EXPECT_TRUE(first.history[r].left.empty()) << r;
    }
  }
  EXPECT_EQ(first.joins, 1u);
  EXPECT_EQ(first.leaves, 1u);
  EXPECT_EQ(first.migrations, 1u);

  // Population sizes visible in the per-round stat counts: 3, 3, then 4
  // after the join, 4, then 3 after the leave.
  EXPECT_EQ(first.history[1].stats.size(), 3u);
  EXPECT_EQ(first.history[2].stats.size(), 4u);
  EXPECT_EQ(first.history[4].stats.size(), 3u);
}

TEST(ElasticDeterminism, MigrationIsPlacementTransparent) {
  const data::Dataset dataset = tiny_dataset(200, 41);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 42);
  // Same membership trajectory with and without a migration: history must
  // be bit-identical because trainer state is a pure function of
  // (trainer id, seed, steps), never of the hosting rank.
  const auto still = run_elastic(dataset, splits, FaultSchedule());
  const auto moved =
      run_elastic(dataset, splits, FaultSchedule().migrate(1, 2, 3));
  EXPECT_EQ(moved.migrations, 1u);
  expect_identical_history(still.history, moved.history);
}

}  // namespace
