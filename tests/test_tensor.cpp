// Unit tests for src/tensor: shapes, blocked GEMM vs the naive reference,
// and elementwise kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/compute_pool.hpp"
#include "util/rng.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::tensor;

void fill_random(Tensor& t, std::uint64_t seed) {
  util::Rng rng(seed);
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

// ---- tensor basics -----------------------------------------------------------

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.size(), 12u);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, TwoDAccessors) {
  Tensor t(2, 3);
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
}

TEST(Tensor, RowView) {
  Tensor t(2, 3);
  auto row = t.row(1);
  row[0] = 5.0f;
  EXPECT_EQ(t.at(1, 0), 5.0f);
  EXPECT_EQ(row.size(), 3u);
}

TEST(Tensor, ConstructorWithValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, ConstructorValueCountMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

TEST(Tensor, ReshapeVolumeMismatchThrows) {
  Tensor t(2, 3);
  EXPECT_THROW(t.reshape({4, 2}), InvalidArgument);
}

TEST(Tensor, ResizeZeroesContents) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  t.resize({3, 3});
  EXPECT_EQ(t.size(), 9u);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full({2, 2}, 3.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 3.5f);
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_volume({2, 3, 4}), 24u);
  EXPECT_EQ(shape_volume({}), 0u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

// ---- gemm ---------------------------------------------------------------------

struct GemmCase {
  std::size_t m, n, k;
  Op op_a, op_b;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesReference) {
  const auto& p = GetParam();
  Tensor a(p.op_a == Op::None ? Shape{p.m, p.k} : Shape{p.k, p.m});
  Tensor b(p.op_b == Op::None ? Shape{p.k, p.n} : Shape{p.n, p.k});
  Tensor c(p.m, p.n), c_ref(p.m, p.n);
  fill_random(a, 1);
  fill_random(b, 2);
  fill_random(c, 3);
  std::copy(c.data().begin(), c.data().end(), c_ref.data().begin());

  gemm(p.op_a, p.op_b, p.alpha, a, b, p.beta, c);
  gemm_reference(p.op_a, p.op_b, p.alpha, a, b, p.beta, c_ref);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTransposes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Op::None, Op::None, 1.0f, 0.0f},
        GemmCase{4, 5, 3, Op::None, Op::None, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Op::None, Op::None, 1.0f, 0.0f},
        GemmCase{7, 9, 11, Op::Transpose, Op::None, 1.0f, 0.0f},
        GemmCase{7, 9, 11, Op::None, Op::Transpose, 1.0f, 0.0f},
        GemmCase{7, 9, 11, Op::Transpose, Op::Transpose, 1.0f, 0.0f},
        GemmCase{65, 129, 130, Op::None, Op::None, 1.0f, 0.0f},   // > blocks
        GemmCase{128, 64, 200, Op::Transpose, Op::None, 1.0f, 1.0f},
        GemmCase{33, 17, 250, Op::None, Op::Transpose, 0.5f, -1.0f},
        GemmCase{5, 5, 5, Op::None, Op::None, 2.0f, 3.0f},
        GemmCase{5, 5, 5, Op::None, Op::None, 0.0f, 2.0f}));

// Restores the process-wide compute pool to its environment-selected size
// on scope exit, so pool-sweep tests cannot leak a size into later tests.
class ScopedPoolSize {
 public:
  explicit ScopedPoolSize(std::size_t workers) {
    util::ComputePool::instance().resize(workers);
  }
  ~ScopedPoolSize() {
    util::ComputePool::instance().resize(util::ComputePool::env_threads());
  }
};

// Exhaustive conformance sweep: odd shapes (unit, primes, sub-tile,
// straddling the 64x128 macro-block boundary) x all four transpose
// combinations x pool sizes {1, 3, 8}. Every configuration must match the
// naive triple-loop reference — the threaded register-tiled kernel earns
// its speed only if it is indistinguishable from the textbook product.
TEST(GemmPoolSweep, MatchesReferenceAcrossShapesOpsAndPoolSizes) {
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {1, 1, 1},   {1, 17, 3},  {3, 1, 7},    {5, 5, 5},
      {13, 29, 31}, {63, 127, 129}, {65, 129, 131}, {128, 128, 64}};
  const std::pair<Op, Op> ops[] = {{Op::None, Op::None},
                                   {Op::Transpose, Op::None},
                                   {Op::None, Op::Transpose},
                                   {Op::Transpose, Op::Transpose}};
  for (const std::size_t workers : {1u, 3u, 8u}) {
    ScopedPoolSize pool(workers);
    for (const auto& [m, n, k] : shapes) {
      for (const auto& [op_a, op_b] : ops) {
        Tensor a(op_a == Op::None ? Shape{m, k} : Shape{k, m});
        Tensor b(op_b == Op::None ? Shape{k, n} : Shape{n, k});
        Tensor c(m, n), c_ref(m, n);
        fill_random(a, m * 31 + n);
        fill_random(b, n * 37 + k);
        fill_random(c, k * 41 + m);
        std::copy(c.data().begin(), c.data().end(), c_ref.data().begin());
        gemm(op_a, op_b, 0.75f, a, b, 0.5f, c);
        gemm_reference(op_a, op_b, 0.75f, a, b, 0.5f, c_ref);
        for (std::size_t i = 0; i < c.size(); ++i) {
          ASSERT_NEAR(c[i], c_ref[i], 1e-3f)
              << "workers=" << workers << " m=" << m << " n=" << n
              << " k=" << k << " element " << i;
        }
      }
    }
  }
}

// Determinism contract (DESIGN.md): one task per C macro-block with the
// k-panel loop sequential inside it, so the floating-point summation order
// per element is fixed. Threaded runs must be BIT-identical to the serial
// run and to each other, at any pool size — data-parallel replicas rely on
// this to stay weight-synchronized without re-broadcasts.
TEST(GemmPoolSweep, BitIdenticalAcrossRunsAndPoolSizes) {
  constexpr std::size_t kM = 150, kN = 170, kK = 260;  // several blocks, edges
  Tensor a(kM, kK), b(kK, kN);
  fill_random(a, 11);
  fill_random(b, 12);

  Tensor serial(kM, kN);
  {
    ScopedPoolSize pool(1);
    matmul(a, b, serial);
  }
  for (const std::size_t workers : {3u, 8u}) {
    ScopedPoolSize pool(workers);
    for (int run = 0; run < 3; ++run) {
      Tensor c(kM, kN);
      matmul(a, b, c);
      for (std::size_t i = 0; i < c.size(); ++i) {
        ASSERT_EQ(c[i], serial[i])
            << "workers=" << workers << " run=" << run << " element " << i;
      }
    }
  }
}

// The pool-parallel reductions in ops.cpp combine fixed-grain partials in
// index order: sums must also be bit-stable across pool sizes.
TEST(OpsPoolSweep, ReductionsBitIdenticalAcrossPoolSizes) {
  std::vector<float> values(100000);
  util::Rng rng(21);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  ScopedPoolSize serial(1);
  const double sum1 = sum(values);
  const double sq1 = squared_norm(values);
  const float max1 = max_abs(values);
  for (const std::size_t workers : {3u, 8u}) {
    ScopedPoolSize pool(workers);
    EXPECT_EQ(sum(values), sum1) << "workers=" << workers;
    EXPECT_EQ(squared_norm(values), sq1) << "workers=" << workers;
    EXPECT_EQ(max_abs(values), max1) << "workers=" << workers;
  }
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Tensor a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(matmul(a, b, c), InvalidArgument);
}

TEST(Gemm, OutputShapeMismatchThrows) {
  Tensor a(2, 3), b(3, 5), c(2, 4);
  EXPECT_THROW(matmul(a, b, c), InvalidArgument);
}

TEST(Gemm, IdentityMultiplication) {
  Tensor eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  Tensor a(3, 3);
  fill_random(a, 4);
  Tensor c(3, 3);
  matmul(eye, a, c);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Gemm, FlopsFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

// ---- ops ----------------------------------------------------------------------

TEST(Ops, Axpy) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0f, x, y);
  EXPECT_EQ(y, (std::vector<float>{12, 24, 36}));
}

TEST(Ops, AxpySizeMismatchThrows) {
  std::vector<float> x{1}, y{1, 2};
  EXPECT_THROW(axpy(1.0f, x, y), InvalidArgument);
}

TEST(Ops, Scale) {
  std::vector<float> x{2, 4};
  scale(0.5f, x);
  EXPECT_EQ(x, (std::vector<float>{1, 2}));
}

TEST(Ops, AddSubHadamard) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({1, 3}, {4, 5, 6});
  Tensor out;
  add(a, b, out);
  EXPECT_EQ(out[0], 5.0f);
  sub(b, a, out);
  EXPECT_EQ(out[2], 3.0f);
  hadamard(a, b, out);
  EXPECT_EQ(out[1], 10.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a(1, 3), b(1, 4), out;
  EXPECT_THROW(add(a, b, out), InvalidArgument);
}

TEST(Ops, AddRowBias) {
  Tensor m({2, 3}, {0, 0, 0, 1, 1, 1});
  const std::vector<float> bias{10, 20, 30};
  add_row_bias(bias, m);
  EXPECT_EQ(m.at(0, 1), 20.0f);
  EXPECT_EQ(m.at(1, 2), 31.0f);
}

TEST(Ops, ColumnSums) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<float> sums(3);
  column_sums(m, sums);
  EXPECT_EQ(sums, (std::vector<float>{5, 7, 9}));
}

TEST(Ops, SumAndNorms) {
  const std::vector<float> x{1, -2, 3};
  EXPECT_DOUBLE_EQ(sum(x), 2.0);
  EXPECT_DOUBLE_EQ(squared_norm(x), 14.0);
  EXPECT_FLOAT_EQ(max_abs(x), 3.0f);
}

TEST(Ops, Clamp) {
  std::vector<float> x{-5, 0, 5};
  clamp(x, -1.0f, 1.0f);
  EXPECT_EQ(x, (std::vector<float>{-1, 0, 1}));
}

TEST(Ops, AllFinite) {
  std::vector<float> ok{1, 2, 3};
  EXPECT_TRUE(all_finite(ok));
  std::vector<float> bad{1, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_FALSE(all_finite(bad));
  std::vector<float> inf{1, std::numeric_limits<float>::infinity()};
  EXPECT_FALSE(all_finite(inf));
}

// ---- half precision (bf16 / fp16) -----------------------------------------

float from_bits(std::uint32_t bits) {
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

TEST(Half, Bf16SpecialValuesRoundTrip) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(to_bfloat16(0.0f).bits, 0x0000u);
  EXPECT_EQ(to_bfloat16(-0.0f).bits, 0x8000u);
  EXPECT_EQ(to_bfloat16(inf).bits, 0x7f80u);
  EXPECT_EQ(to_bfloat16(-inf).bits, 0xff80u);
  EXPECT_EQ(from_bfloat16(bfloat16{0x7f80u}), inf);
  EXPECT_EQ(from_bfloat16(bfloat16{0x8000u}), -0.0f);
  EXPECT_TRUE(std::signbit(from_bfloat16(bfloat16{0x8000u})));
  // NaN stays NaN: the mantissa truncation must not collapse it to inf.
  const float nan = from_bits(0x7f800001u);  // signaling: low bits only
  const bfloat16 qnan = to_bfloat16(nan);
  EXPECT_TRUE(std::isnan(from_bfloat16(qnan)));
  // fp32 max overflows bf16's 8-bit mantissa grid to infinity via RNE.
  EXPECT_EQ(to_bfloat16(std::numeric_limits<float>::max()).bits, 0x7f80u);
}

TEST(Half, Bf16RoundToNearestEven) {
  // 0x3f80'8000 sits exactly halfway between bf16 0x3f80 (1.0) and 0x3f81;
  // ties go to the even encoding.
  EXPECT_EQ(to_bfloat16(from_bits(0x3f808000u)).bits, 0x3f80u);
  EXPECT_EQ(to_bfloat16(from_bits(0x3f818000u)).bits, 0x3f82u);
  // One ulp above the tie rounds up regardless of parity.
  EXPECT_EQ(to_bfloat16(from_bits(0x3f808001u)).bits, 0x3f81u);
  // Below the tie truncates.
  EXPECT_EQ(to_bfloat16(from_bits(0x3f807fffu)).bits, 0x3f80u);
}

TEST(Half, Bf16ExhaustiveRoundTrip) {
  // Every bf16 value is exactly representable in fp32, so decode -> encode
  // must reproduce the bits (NaNs additionally get the quiet bit forced).
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto b = static_cast<std::uint16_t>(bits);
    const float f = from_bfloat16(bfloat16{b});
    const std::uint16_t back = to_bfloat16(f).bits;
    if (std::isnan(f)) {
      EXPECT_EQ(back, b | 0x0040u) << "bf16 bits " << bits;
    } else {
      EXPECT_EQ(back, b) << "bf16 bits " << bits;
    }
  }
}

TEST(Half, Fp16SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(to_float16(0.0f).bits, 0x0000u);
  EXPECT_EQ(to_float16(-0.0f).bits, 0x8000u);
  EXPECT_EQ(to_float16(inf).bits, 0x7c00u);
  EXPECT_EQ(to_float16(-inf).bits, 0xfc00u);
  EXPECT_EQ(to_float16(1.0f).bits, 0x3c00u);
  EXPECT_EQ(to_float16(65504.0f).bits, 0x7bffu);  // fp16 max
  // 65520 is the tie between max and the unrepresentable 65536: IEEE
  // overflow rounds to infinity.
  EXPECT_EQ(to_float16(65520.0f).bits, 0x7c00u);
  EXPECT_EQ(to_float16(65519.996f).bits, 0x7bffu);
  EXPECT_TRUE(std::isnan(from_float16(to_float16(
      std::numeric_limits<float>::quiet_NaN()))));
  // A NaN whose payload dies in the 13-bit truncation must stay a NaN.
  EXPECT_TRUE(std::isnan(from_float16(to_float16(from_bits(0x7f800001u)))));
}

TEST(Half, Fp16Subnormals) {
  const float smallest = std::ldexp(1.0f, -24);  // smallest fp16 subnormal
  EXPECT_EQ(to_float16(smallest).bits, 0x0001u);
  EXPECT_EQ(from_float16(float16{0x0001u}), smallest);
  // Exactly half the smallest subnormal ties to even -> zero.
  EXPECT_EQ(to_float16(std::ldexp(1.0f, -25)).bits, 0x0000u);
  EXPECT_EQ(to_float16(-std::ldexp(1.0f, -25)).bits, 0x8000u);
  // Just above the tie rounds up to the smallest subnormal.
  EXPECT_EQ(to_float16(std::ldexp(1.0f, -25) * 1.0001f).bits, 0x0001u);
  // Largest subnormal and the subnormal->normal carry boundary.
  const float largest_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(to_float16(largest_sub).bits, 0x03ffu);
  EXPECT_EQ(from_float16(float16{0x03ffu}), largest_sub);
  // Halfway between the largest subnormal and the smallest normal: the
  // rounding carry must ripple into the exponent field.
  EXPECT_EQ(to_float16(std::ldexp(2047.0f, -25)).bits, 0x0400u);
}

TEST(Half, Fp16RoundToNearestEvenTies) {
  // 1 + 2^-11 is the tie between 0x3c00 (1.0) and 0x3c01; even wins.
  EXPECT_EQ(to_float16(1.0f + std::ldexp(1.0f, -11)).bits, 0x3c00u);
  EXPECT_EQ(to_float16(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits, 0x3c02u);
  EXPECT_EQ(to_float16(1.0f + std::ldexp(1.0f, -11) +
                       std::ldexp(1.0f, -20)).bits, 0x3c01u);
}

TEST(Half, Fp16ExhaustiveRoundTrip) {
  // decode -> encode is the identity for every one of the 65536 fp16 bit
  // patterns, NaN payloads included: stored-precision images round-trip
  // losslessly.
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    EXPECT_EQ(to_float16(from_float16(float16{h})).bits, h)
        << "fp16 bits " << bits;
  }
}

TEST(Half, QuantizeMatchesEncodeDecode) {
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(-100.0, 100.0));
    EXPECT_EQ(quantize(x, HalfKind::Bf16), from_bfloat16(to_bfloat16(x)));
    EXPECT_EQ(quantize(x, HalfKind::Fp16), from_float16(to_float16(x)));
  }
}

TEST(Half, SpanCodecsRoundTripAndValidate) {
  std::vector<float> in{0.0f, -1.5f, 3.1415926f, 65504.0f,
                        std::ldexp(1.0f, -24),
                        std::numeric_limits<float>::infinity()};
  std::vector<std::uint16_t> wire(in.size());
  std::vector<float> out(in.size());
  for (const HalfKind kind : {HalfKind::Bf16, HalfKind::Fp16}) {
    encode_half(in, wire, kind);
    decode_half(wire, out, kind);
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i], quantize(in[i], kind));
    }
    // Decoded values are exactly at stored precision: a second trip
    // through the codec is the identity.
    std::vector<std::uint16_t> wire2(in.size());
    encode_half(out, wire2, kind);
    EXPECT_EQ(wire2, wire);
  }
  std::vector<std::uint16_t> short_wire(in.size() - 1);
  EXPECT_THROW(encode_half(in, short_wire, HalfKind::Bf16), InvalidArgument);
  EXPECT_THROW(decode_half(short_wire, out, HalfKind::Fp16), InvalidArgument);
}

// ---- fused gemm epilogues --------------------------------------------------

// Applies the epilogue definition directly: C(i,j) = act(C(i,j) + bias[j]).
void reference_epilogue(Tensor& c, const Epilogue& ep) {
  const std::size_t m = c.rows(), n = c.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float x = c.at(i, j);
      if (ep.bias != nullptr) x += ep.bias[j];
      switch (ep.act) {
        case EpilogueAct::None: break;
        case EpilogueAct::Relu: x = x > 0.0f ? x : 0.0f; break;
        case EpilogueAct::LeakyRelu:
          x = x > 0.0f ? x : ep.leaky_slope * x;
          break;
        case EpilogueAct::Sigmoid: x = 1.0f / (1.0f + std::exp(-x)); break;
        case EpilogueAct::Tanh: x = std::tanh(x); break;
      }
      c.at(i, j) = x;
    }
  }
}

// The fused path must be bit-identical to gemm-then-epilogue: the epilogue
// is elementwise on the finished C tile, so fusion changes when it runs,
// never what it computes. Sweeps all four transpose combos, every
// activation, and shapes with ragged micro-kernel tails.
TEST(GemmEpilogue, FusedMatchesUnfusedBitExact) {
  const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
      shapes{{1, 1, 1}, {4, 16, 8}, {5, 7, 3}, {17, 33, 9}, {32, 19, 21}};
  const std::vector<EpilogueAct> acts{
      EpilogueAct::None, EpilogueAct::Relu, EpilogueAct::LeakyRelu,
      EpilogueAct::Sigmoid, EpilogueAct::Tanh};
  for (const auto& [m, n, k] : shapes) {
    std::vector<float> bias(n);
    for (std::size_t j = 0; j < n; ++j) {
      bias[j] = static_cast<float>(j) * 0.25f - 1.0f;
    }
    for (const Op op_a : {Op::None, Op::Transpose}) {
      for (const Op op_b : {Op::None, Op::Transpose}) {
        Tensor a = op_a == Op::None ? Tensor(m, k) : Tensor(k, m);
        Tensor b = op_b == Op::None ? Tensor(k, n) : Tensor(n, k);
        fill_random(a, 11 + m);
        fill_random(b, 23 + n);
        for (const EpilogueAct act : acts) {
          for (const float beta : {0.0f, 0.5f}) {
            Epilogue ep;
            ep.bias = bias.data();
            ep.act = act;
            Tensor fused(m, n), unfused(m, n);
            fill_random(fused, 31);
            fill_random(unfused, 31);
            gemm(op_a, op_b, 1.0f, a, b, beta, fused, ep);
            gemm(op_a, op_b, 1.0f, a, b, beta, unfused);
            reference_epilogue(unfused, ep);
            for (std::size_t i = 0; i < fused.size(); ++i) {
              ASSERT_EQ(fused[i], unfused[i])
                  << "m=" << m << " n=" << n << " k=" << k << " act="
                  << static_cast<int>(act) << " beta=" << beta << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(GemmEpilogue, BiasOnlyMatchesAddRowBias) {
  Tensor a(6, 5), b(5, 9), fused(6, 9), plain(6, 9);
  fill_random(a, 3);
  fill_random(b, 4);
  std::vector<float> bias(9, 0.75f);
  Epilogue ep;
  ep.bias = bias.data();
  gemm(Op::None, Op::None, 1.0f, a, b, 0.0f, fused, ep);
  matmul(a, b, plain);
  add_row_bias(bias, plain);
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], plain[i]);
  }
}

TEST(GemmEpilogue, DegenerateGemmStillAppliesEpilogue) {
  // alpha == 0 degenerates the multiply; the contract is still
  // gemm-then-epilogue, i.e. the epilogue transforms the beta-scaled C.
  Tensor a(3, 4), b(4, 5);
  fill_random(a, 7);
  fill_random(b, 8);
  std::vector<float> bias{-2.0f, -1.0f, 0.0f, 1.0f, 2.0f};
  Epilogue ep;
  ep.bias = bias.data();
  ep.act = EpilogueAct::Relu;
  Tensor c(3, 5);
  fill_random(c, 9);
  Tensor expected = c;
  gemm(Op::None, Op::None, 0.0f, a, b, 0.5f, c, ep);
  scale(0.5f, expected.data());
  reference_epilogue(expected, ep);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], expected[i]);
  }
}

TEST(GemmEpilogue, EmptyEpilogueMatchesPlainGemm) {
  Tensor a(8, 8), b(8, 8), c1(8, 8), c2(8, 8);
  fill_random(a, 1);
  fill_random(b, 2);
  gemm(Op::None, Op::None, 1.0f, a, b, 0.0f, c1, Epilogue{});
  gemm(Op::None, Op::None, 1.0f, a, b, 0.0f, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1[i], c2[i]);
}

}  // namespace
