// Property-based tests: randomized sweeps asserting invariants across
// modules — the blocked GEMM against the naive reference on random
// problems, message-passing under randomized traffic, data-store fetch
// correctness under fuzzed access patterns, DES work conservation, model
// gradients for every activation, and sampler uniformity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <set>

#include "comm/communicator.hpp"
#include "core/ltfb.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"
#include "jag/jag_model.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "simulator/channel.hpp"
#include "tensor/gemm.hpp"
#include "workflow/sampler.hpp"

namespace {

using namespace ltfb;

// ---- GEMM: randomized configurations vs the reference kernel -----------------

class RandomGemm : public ::testing::TestWithParam<int> {};

TEST_P(RandomGemm, MatchesReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 90));
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 90));
  const auto k = static_cast<std::size_t>(rng.uniform_int(1, 160));
  const auto op_a = rng.bernoulli(0.5) ? tensor::Op::Transpose
                                       : tensor::Op::None;
  const auto op_b = rng.bernoulli(0.5) ? tensor::Op::Transpose
                                       : tensor::Op::None;
  const auto alpha = static_cast<float>(rng.uniform(-2.0, 2.0));
  const auto beta = static_cast<float>(rng.uniform(-2.0, 2.0));

  tensor::Tensor a(op_a == tensor::Op::None ? tensor::Shape{m, k}
                                            : tensor::Shape{k, m});
  tensor::Tensor b(op_b == tensor::Op::None ? tensor::Shape{k, n}
                                            : tensor::Shape{n, k});
  tensor::Tensor c(m, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : c.data()) v = static_cast<float>(rng.uniform(-1, 1));
  tensor::Tensor c_ref = c;

  tensor::gemm(op_a, op_b, alpha, a, b, beta, c);
  tensor::gemm_reference(op_a, op_b, alpha, a, b, beta, c_ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 2e-3f)
        << "m=" << m << " n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGemm, ::testing::Range(0, 12));

// ---- comm: randomized traffic, deterministic plan --------------------------------

class MessageStorm : public ::testing::TestWithParam<int> {};

TEST_P(MessageStorm, AllMessagesDelivered) {
  // Both sides derive the SAME traffic plan from the seed: a list of
  // (src, dst, tag, payload-value) tuples. Every rank sends its outgoing
  // messages, then receives its incoming ones in order per (src, tag).
  const int ranks = 4;
  const auto seed = static_cast<std::uint64_t>(GetParam());
  struct Msg {
    int src, dst, tag;
    std::uint8_t value;
  };
  std::vector<Msg> plan;
  util::Rng rng(util::derive_seed(seed, "storm"));
  for (int i = 0; i < 120; ++i) {
    Msg msg;
    msg.src = static_cast<int>(rng.uniform_index(ranks));
    msg.dst = static_cast<int>(rng.uniform_index(ranks));
    msg.tag = static_cast<int>(rng.uniform_index(5));
    msg.value = static_cast<std::uint8_t>(rng.uniform_index(256));
    plan.push_back(msg);
  }
  comm::World::run(ranks, [&](comm::Communicator& comm) {
    for (const auto& msg : plan) {
      if (msg.src == comm.rank()) {
        comm.send(msg.dst, msg.tag, comm::Buffer{msg.value});
      }
    }
    for (const auto& msg : plan) {
      if (msg.dst == comm.rank()) {
        const comm::Buffer got = comm.recv(msg.src, msg.tag);
        ASSERT_EQ(got.size(), 1u);
        // FIFO per (src, tag): the value must match the plan order.
        EXPECT_EQ(got[0], msg.value);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageStorm, ::testing::Range(0, 6));

// ---- data store: fuzzed access patterns vs ground truth ---------------------------

class DataStoreFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DataStoreFuzz, FetchAlwaysReturnsGroundTruth) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ltfb_fuzz_" + std::to_string(seed));
  std::filesystem::remove_all(dir);

  data::SampleSchema schema;
  schema.input_width = 3;
  schema.scalar_width = 2;
  schema.image_width = 5;
  std::vector<data::Sample> samples;
  util::Rng maker(util::derive_seed(seed, "samples"));
  const std::size_t total = 60;
  for (data::SampleId id = 0; id < total; ++id) {
    data::Sample sample;
    sample.id = id;
    sample.input.resize(3);
    sample.scalars.resize(2);
    sample.images.resize(5);
    for (auto& v : sample.input) v = static_cast<float>(maker.uniform());
    for (auto& v : sample.scalars) v = static_cast<float>(maker.uniform());
    for (auto& v : sample.images) v = static_cast<float>(maker.uniform());
    samples.push_back(sample);
  }
  const auto paths = data::write_bundle_set(dir, schema, samples, 6);
  datastore::BundleCatalog catalog(paths);

  // A deterministic plan of 10 collective fetches with random ids (shared
  // across ranks so they stay in lockstep; each rank uses its own slice).
  std::vector<std::vector<data::SampleId>> plan(10);
  util::Rng planner(util::derive_seed(seed, "plan"));
  for (auto& step : plan) {
    const auto count = 1 + planner.uniform_index(8);
    for (std::size_t i = 0; i < count * 3; ++i) {
      step.push_back(planner.uniform_index(total));
    }
  }

  comm::World::run(3, [&](comm::Communicator& comm) {
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded);
    store.preload();
    for (const auto& step : plan) {
      // Rank r takes every third id, offset by rank — arbitrary overlap.
      std::vector<data::SampleId> mine;
      for (std::size_t i = static_cast<std::size_t>(comm.rank());
           i < step.size(); i += 3) {
        mine.push_back(step[i]);
      }
      if (mine.empty()) mine.push_back(step[0]);
      const auto got = store.fetch(mine);
      ASSERT_EQ(got.size(), mine.size());
      for (std::size_t i = 0; i < mine.size(); ++i) {
        const auto& truth = samples[mine[i]];
        EXPECT_EQ(got[i].id, truth.id);
        EXPECT_EQ(got[i].input, truth.input);
        EXPECT_EQ(got[i].scalars, truth.scalars);
        EXPECT_EQ(got[i].images, truth.images);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataStoreFuzz, ::testing::Range(0, 5));

// ---- DES: work conservation under random load --------------------------------------

class ChannelLoad : public ::testing::TestWithParam<int> {};

TEST_P(ChannelLoad, WorkConservationInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  util::Rng rng(util::derive_seed(seed, "channel"));
  sim::EventQueue queue;
  const double capacity = 100.0;
  sim::FairShareChannel channel(queue, capacity);

  double total_bytes = 0.0;
  double max_arrival = 0.0;
  double last_done = 0.0;
  std::size_t completed = 0;
  const int flows = 12;
  for (int i = 0; i < flows; ++i) {
    const double at = rng.uniform(0.0, 5.0);
    const double bytes = rng.uniform(10.0, 500.0);
    const double cap = rng.bernoulli(0.5) ? rng.uniform(5.0, 50.0) : 1e18;
    total_bytes += bytes;
    max_arrival = std::max(max_arrival, at);
    queue.at(at, [&, bytes, cap] {
      channel.transfer(bytes, cap, [&] {
        ++completed;
        last_done = std::max(last_done, queue.now());
      });
    });
  }
  queue.run();
  EXPECT_EQ(completed, static_cast<std::size_t>(flows));
  EXPECT_DOUBLE_EQ(channel.total_bytes_completed(), total_bytes);
  // The channel cannot beat its capacity: finishing all bytes takes at
  // least total/capacity seconds of busy time.
  EXPECT_GE(channel.busy_time() + 1e-9, total_bytes / capacity);
  // And cannot finish before the busiest lower bound.
  EXPECT_GE(last_done + 1e-9, total_bytes / capacity);
  EXPECT_LE(channel.busy_time(), last_done + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelLoad, ::testing::Range(0, 8));

// ---- model gradients for every activation -------------------------------------------

class ActivationGradients
    : public ::testing::TestWithParam<nn::ActivationKind> {};

TEST_P(ActivationGradients, FiniteDifferenceCheck) {
  nn::Model model("m", 19);
  const auto in = model.add_input(3);
  const auto hidden = model.add_dense(in, 5, GetParam());
  const auto out = model.add_linear(hidden, 2);

  util::Rng rng(23);
  tensor::Tensor x(4, 3), target(4, 2);
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : target.data()) v = static_cast<float>(rng.uniform(-1, 1));

  model.forward({&x}, false);
  tensor::Tensor grad;
  nn::mse_loss(model.output(out), target, &grad);
  model.zero_gradients();
  model.add_output_gradient(out, grad);
  model.backward();

  const float eps = 1e-3f;
  for (nn::Weights* w : model.weights()) {
    auto values = w->values().data();
    const auto analytic = w->gradient().data();
    for (std::size_t i = 0; i < values.size(); i += 3) {
      const float saved = values[i];
      values[i] = saved + eps;
      model.forward({&x}, false);
      const double up = nn::mse_loss(model.output(out), target, nullptr);
      values[i] = saved - eps;
      model.forward({&x}, false);
      const double down = nn::mse_loss(model.output(out), target, nullptr);
      values[i] = saved;
      EXPECT_NEAR(analytic[i], (up - down) / (2.0 * eps), 5e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ActivationGradients,
                         ::testing::Values(nn::ActivationKind::Relu,
                                           nn::ActivationKind::LeakyRelu,
                                           nn::ActivationKind::Sigmoid,
                                           nn::ActivationKind::Tanh));

// ---- tournament pairing over many configurations -------------------------------------

class PairingSweep : public ::testing::TestWithParam<int> {};

TEST_P(PairingSweep, AlwaysAValidMatching) {
  const auto n = static_cast<std::size_t>(GetParam());
  for (std::size_t round = 0; round < 12; ++round) {
    const auto pairs = core::tournament_pairs(n, 99, round);
    EXPECT_EQ(pairs.size(), n / 2);
    std::set<int> seen;
    for (const auto& [a, b] : pairs) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, static_cast<int>(n));
      EXPECT_NE(a, b);
      EXPECT_TRUE(seen.insert(a).second);
      EXPECT_TRUE(seen.insert(b).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PairingSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(PairingSweep, OddPopulationSitOutRotates) {
  // Odd populations produce floor(n/2) pairs and exactly one sit-out per
  // round. Every id must appear exactly once (in a pair or as the
  // sit-out), the schedule must be deterministic per (seed, round), and
  // because the sit-out comes from the seeded permutation it must rotate
  // across rounds instead of benching the same trainer forever.
  for (const std::size_t n : {3u, 5u, 9u, 17u}) {
    std::set<int> sat_out;
    for (std::size_t round = 0; round < 16; ++round) {
      const auto pairs = core::tournament_pairs(n, 4242, round);
      ASSERT_EQ(pairs.size(), n / 2);
      std::set<int> seen;
      for (const auto& [a, b] : pairs) {
        ASSERT_TRUE(seen.insert(a).second) << a << " paired twice";
        ASSERT_TRUE(seen.insert(b).second) << b << " paired twice";
      }
      int sit_out = -1;
      for (int id = 0; id < static_cast<int>(n); ++id) {
        if (seen.count(id) == 0) {
          ASSERT_EQ(sit_out, -1) << "more than one trainer sat out";
          sit_out = id;
        }
      }
      ASSERT_GE(sit_out, 0);
      sat_out.insert(sit_out);

      // Same (n, seed, round) -> identical schedule.
      ASSERT_EQ(pairs, core::tournament_pairs(n, 4242, round));
    }
    EXPECT_GE(sat_out.size(), std::min<std::size_t>(n, 3u))
        << "sit-out never rotates for n=" << n;
  }
}

TEST(PairingSweep, PartnersRotateOverRounds) {
  // Over many rounds each trainer should meet several distinct partners —
  // the mechanism by which knowledge percolates through the population.
  std::map<int, std::set<int>> partners;
  for (std::size_t round = 0; round < 24; ++round) {
    for (const auto& [a, b] : core::tournament_pairs(8, 7, round)) {
      partners[a].insert(b);
      partners[b].insert(a);
    }
  }
  for (const auto& [trainer, met] : partners) {
    EXPECT_GE(met.size(), 4u) << "trainer " << trainer
                              << " met too few partners";
  }
}

// ---- sampler projections are near-uniform -------------------------------------------

TEST(SamplerProperties, SpectralProjectionsUniform) {
  const workflow::SpectralSampler sampler;
  const auto points = sampler.points(2000);
  for (std::size_t dim = 0; dim < jag::kNumInputs; ++dim) {
    std::array<int, 10> bins{};
    for (const auto& point : points) {
      ++bins[std::min<std::size_t>(
          9, static_cast<std::size_t>(point[dim] * 10.0))];
    }
    for (const int count : bins) {
      // Perfect uniformity would be 200 per bin.
      EXPECT_NEAR(count, 200, 25) << "dimension " << dim;
    }
  }
}

TEST(SamplerProperties, JagOverSpectralDesignAllFinite) {
  jag::JagConfig config;
  config.image_size = 4;
  const jag::JagModel model(config);
  const workflow::SpectralSampler sampler;
  for (std::size_t i = 0; i < 300; ++i) {
    const auto out = model.run(sampler.point(i));
    for (const float s : out.scalars) ASSERT_TRUE(std::isfinite(s));
  }
}

// ---- normalizer roundtrip under random data -------------------------------------------

class NormalizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NormalizerFuzz, TransformInverseIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 555);
  const auto width = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const auto rows = static_cast<std::size_t>(rng.uniform_int(2, 50));
  std::vector<float> values(width * rows);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(rng.uniform(-100, 100),
                                      rng.uniform(0.001, 50)));
  }
  data::Normalizer norm;
  norm.fit(values, width);
  std::vector<float> copy = values;
  norm.transform(copy);
  norm.inverse(copy);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(copy[i], values[i],
                std::max(1e-3f, std::abs(values[i]) * 1e-4f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizerFuzz, ::testing::Range(0, 6));

}  // namespace
