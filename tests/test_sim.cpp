// Tests for the discrete-event simulator: event ordering, the fair-share
// channel's processor-sharing behaviour, the latency station, and the
// parallel file-system contention model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simulator/channel.hpp"
#include "simulator/cluster.hpp"
#include "simulator/event_queue.hpp"
#include "simulator/filesystem.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::sim;

// ---- event queue ----------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.at(3.0, [&] { order.push_back(3); });
  queue.at(1.0, [&] { order.push_back(1); });
  queue.at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue queue;
  std::vector<int> order;
  queue.at(1.0, [&] { order.push_back(0); });
  queue.at(1.0, [&] { order.push_back(1); });
  queue.at(1.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.after(1.0, chain);
  };
  queue.after(0.0, chain);
  queue.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue queue;
  queue.at(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.at(1.0, [] {}), InvalidArgument);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.at(0.0, [] {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
  EXPECT_EQ(queue.events_processed(), 1u);
}

// ---- fair-share channel -----------------------------------------------------------

TEST(Channel, SingleFlowTakesBytesOverCapacity) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);  // 100 B/s
  double done_at = -1.0;
  channel.transfer(500.0, [&] { done_at = queue.now(); });
  queue.run();
  EXPECT_NEAR(done_at, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(channel.total_bytes_completed(), 500.0);
}

TEST(Channel, TwoEqualFlowsShareFairly) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double a = -1, b = -1;
  channel.transfer(500.0, [&] { a = queue.now(); });
  channel.transfer(500.0, [&] { b = queue.now(); });
  queue.run();
  // Both progress at 50 B/s -> both complete at t = 10.
  EXPECT_NEAR(a, 10.0, 1e-9);
  EXPECT_NEAR(b, 10.0, 1e-9);
}

TEST(Channel, ShortFlowFreesBandwidthForLongFlow) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double short_done = -1, long_done = -1;
  channel.transfer(100.0, [&] { short_done = queue.now(); });
  channel.transfer(900.0, [&] { long_done = queue.now(); });
  queue.run();
  // Shared until t=2 (100 each at 50 B/s); short finishes, long has 800
  // left at 100 B/s -> 2 + 8 = 10.
  EXPECT_NEAR(short_done, 2.0, 1e-9);
  EXPECT_NEAR(long_done, 10.0, 1e-9);
}

TEST(Channel, RateCapLimitsFlow) {
  EventQueue queue;
  FairShareChannel channel(queue, 1000.0);
  double done = -1;
  channel.transfer(100.0, /*rate_cap=*/10.0, [&] { done = queue.now(); });
  queue.run();
  EXPECT_NEAR(done, 10.0, 1e-9);
}

TEST(Channel, CappedFlowSlackGoesToOthers) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double capped = -1, open = -1;
  channel.transfer(100.0, /*rate_cap=*/20.0, [&] { capped = queue.now(); });
  channel.transfer(400.0, [&] { open = queue.now(); });
  queue.run();
  // Capped flow: 20 B/s -> done at 5. Open flow: 80 B/s until t=5
  // (400 bytes done) -> both at 5.
  EXPECT_NEAR(capped, 5.0, 1e-9);
  EXPECT_NEAR(open, 5.0, 1e-9);
}

TEST(Channel, StaggeredArrivals) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double first = -1, second = -1;
  channel.transfer(300.0, [&] { first = queue.now(); });
  queue.at(1.0, [&] {
    channel.transfer(100.0, [&] { second = queue.now(); });
  });
  queue.run();
  // t<1: first at 100 B/s (100 done). t in [1, 3]: both at 50 B/s; second
  // finishes at t=3 (100 bytes). first has 100 left -> done at t=4.
  EXPECT_NEAR(second, 3.0, 1e-9);
  EXPECT_NEAR(first, 4.0, 1e-9);
}

TEST(Channel, SetCapacityRescalesInFlight) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double done = -1;
  channel.transfer(1000.0, [&] { done = queue.now(); });
  queue.at(5.0, [&] { channel.set_capacity(50.0); });
  queue.run();
  // 500 bytes in first 5 s; remaining 500 at 50 B/s -> 5 + 10 = 15.
  EXPECT_NEAR(done, 15.0, 1e-9);
}

TEST(Channel, ZeroByteTransferCompletes) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  bool done = false;
  channel.transfer(0.0, [&] { done = true; });
  queue.run();
  EXPECT_TRUE(done);
}

TEST(Channel, CompletionHandlerCanStartNewTransfer) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  double final_time = -1;
  channel.transfer(100.0, [&] {
    channel.transfer(100.0, [&] { final_time = queue.now(); });
  });
  queue.run();
  EXPECT_NEAR(final_time, 2.0, 1e-9);
}

TEST(Channel, BusyTimeTracked) {
  EventQueue queue;
  FairShareChannel channel(queue, 100.0);
  channel.transfer(200.0, [] {});
  queue.run();
  EXPECT_NEAR(channel.busy_time(), 2.0, 1e-9);
}

TEST(Channel, InvalidParametersThrow) {
  EventQueue queue;
  EXPECT_THROW(FairShareChannel(queue, 0.0), InvalidArgument);
  FairShareChannel channel(queue, 10.0);
  EXPECT_THROW(channel.transfer(-1.0, [] {}), InvalidArgument);
  EXPECT_THROW(channel.set_capacity(-5.0), InvalidArgument);
}

// ---- latency station ----------------------------------------------------------------

TEST(Station, SingleServerSerializes) {
  EventQueue queue;
  LatencyStation station(queue, 1, 2.0);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    station.request([&] { done.push_back(queue.now()); });
  }
  queue.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
  EXPECT_NEAR(done[2], 6.0, 1e-9);
  EXPECT_EQ(station.served(), 3u);
  EXPECT_NEAR(station.max_wait(), 4.0, 1e-9);
}

TEST(Station, ParallelServersOverlap) {
  EventQueue queue;
  LatencyStation station(queue, 3, 2.0);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    station.request([&] { done.push_back(queue.now()); });
  }
  queue.run();
  for (const double t : done) {
    EXPECT_NEAR(t, 2.0, 1e-9);
  }
  EXPECT_NEAR(station.max_wait(), 0.0, 1e-9);
}

TEST(Station, QueueDepthVisible) {
  EventQueue queue;
  LatencyStation station(queue, 1, 1.0);
  for (int i = 0; i < 5; ++i) station.request([] {});
  // One dispatched immediately, four waiting.
  EXPECT_EQ(station.queued(), 4u);
  queue.run();
  EXPECT_EQ(station.queued(), 0u);
}

// ---- parallel file system --------------------------------------------------------------

FileSystemConfig test_fs() {
  FileSystemConfig fs;
  fs.open_latency_s = 0.1;
  fs.metadata_servers = 2;
  fs.aggregate_bandwidth = 1000.0;
  fs.per_client_bandwidth = 300.0;
  fs.interference = 0.5;
  fs.interference_knee = 4;
  return fs;
}

TEST(FileSystem, OpenGoesThroughMetadata) {
  EventQueue queue;
  ParallelFileSystem fs(queue, test_fs());
  double done = -1;
  fs.open([&] { done = queue.now(); });
  queue.run();
  EXPECT_NEAR(done, 0.1, 1e-9);
  EXPECT_EQ(fs.stats().opens, 1u);
}

TEST(FileSystem, ReadCappedPerClient) {
  EventQueue queue;
  ParallelFileSystem fs(queue, test_fs());
  double done = -1;
  fs.read(600.0, [&] { done = queue.now(); });
  queue.run();
  EXPECT_NEAR(done, 2.0, 1e-9);  // 600 / 300 cap, aggregate not binding
  EXPECT_DOUBLE_EQ(fs.stats().bytes_read, 600.0);
}

TEST(FileSystem, AggregateBindsManyClients) {
  EventQueue queue;
  ParallelFileSystem fs(queue, test_fs());
  std::vector<double> done(5, -1.0);
  for (int i = 0; i < 5; ++i) {
    fs.read(200.0, [&done, i, &queue] { done[static_cast<std::size_t>(i)] =
                                            queue.now(); });
  }
  queue.run();
  // 5 clients want 300 each; aggregate 1000 -> 200 B/s each -> t = 1.
  for (const double t : done) EXPECT_NEAR(t, 1.0, 1e-9);
}

TEST(FileSystem, EffectiveAggregateDegradesBeyondKnee) {
  EventQueue queue;
  ParallelFileSystem fs(queue, test_fs());
  EXPECT_DOUBLE_EQ(fs.effective_aggregate(), 1000.0);
  for (int i = 0; i < 4; ++i) fs.client_arrived();
  EXPECT_DOUBLE_EQ(fs.effective_aggregate(), 1000.0);  // at the knee
  for (int i = 0; i < 4; ++i) fs.client_arrived();
  // 8 clients, knee 4 -> 1000 / (1 + 0.5 * 1) = 666.7
  EXPECT_NEAR(fs.effective_aggregate(), 1000.0 / 1.5, 1e-6);
  for (int i = 0; i < 8; ++i) fs.client_departed();
  EXPECT_DOUBLE_EQ(fs.effective_aggregate(), 1000.0);
}

TEST(FileSystem, DepartWithoutArriveThrows) {
  EventQueue queue;
  ParallelFileSystem fs(queue, test_fs());
  EXPECT_THROW(fs.client_departed(), InvalidArgument);
}

// ---- cluster spec ---------------------------------------------------------------------

TEST(Cluster, LassenSpecMatchesPaper) {
  const ClusterSpec spec = lassen_spec();
  EXPECT_EQ(spec.nodes, 795);
  EXPECT_EQ(spec.node.gpus, 4);
  EXPECT_DOUBLE_EQ(spec.node.memory_bytes, 256.0 * (1ull << 30));
  EXPECT_DOUBLE_EQ(spec.gpu.memory_bytes, 16.0 * (1ull << 30));
  EXPECT_GT(spec.node.nvlink_bandwidth, spec.node.ib_bandwidth);
}

}  // namespace
