// Chaos harness for the fault-tolerance stack: deterministic fault
// injection (schedule grammar, kill/drop/delay), failure-aware comm
// primitives (deadlines, survivor detection, shrink), survivor
// tournaments, data-store directory repair, and population
// checkpoint/restart with bit-identical resumed history.
//
// The sweep contract: every seeded chaos run either completes with a
// surviving-population result or fails fast with a typed error
// (FaultInjected on the victim, RankFailedError/TimeoutError on
// survivors) — it never hangs and never surfaces an untyped failure.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "comm/communicator.hpp"
#include "core/ltfb_comm.hpp"
#include "core/population.hpp"
#include "core/population_checkpoint.hpp"
#include "datastore/data_store.hpp"
#include "nn/model.hpp"
#include "nn/parallel.hpp"
#include "tensor/half.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;
using comm::FaultSchedule;
using std::chrono::milliseconds;

// Generous enough that healthy runs never brush the deadline, even under
// TSan's slowdown; failures are detected via liveness flags (fast), not by
// waiting out the clock.
constexpr milliseconds kTimeout{1500};

// ---- fixtures ------------------------------------------------------------------------

gan::CycleGanConfig tiny_config() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

struct BundleFixture {
  std::filesystem::path dir;
  std::vector<std::filesystem::path> paths;
  data::SampleSchema schema;
  std::vector<data::Sample> samples;
};

BundleFixture make_bundles(const std::string& name, std::size_t total,
                           std::size_t files) {
  BundleFixture fx;
  fx.dir = std::filesystem::temp_directory_path() / ("ltfb_fault_" + name);
  std::filesystem::remove_all(fx.dir);
  fx.schema.input_width = 5;
  fx.schema.scalar_width = 15;
  fx.schema.image_width = 6;
  for (data::SampleId id = 0; id < total; ++id) {
    data::Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, static_cast<float>(id) * 2.0f);
    sample.images.assign(6, static_cast<float>(id) * 3.0f);
    fx.samples.push_back(std::move(sample));
  }
  fx.paths = data::write_bundle_set(fx.dir, fx.schema, fx.samples, files);
  return fx;
}

/// A chaos-run rank outcome must be clean or carry one of the typed fault
/// errors; anything else (untyped, wrong category) fails the harness.
void expect_typed_or_clean(const std::exception_ptr& error, int rank) {
  if (!error) return;
  try {
    std::rethrow_exception(error);
  } catch (const comm::FaultInjected&) {
  } catch (const RankFailedError&) {
  } catch (const TimeoutError&) {
  } catch (const std::exception& ex) {
    ADD_FAILURE() << "rank " << rank << " died with untyped error: "
                  << ex.what();
  }
}

void expect_identical_history(const std::vector<RoundRecord>& a,
                              const std::vector<RoundRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(a[r].round, b[r].round);
    ASSERT_EQ(a[r].stats.size(), b[r].stats.size());
    for (std::size_t s = 0; s < a[r].stats.size(); ++s) {
      const TrainerRoundStat& x = a[r].stats[s];
      const TrainerRoundStat& y = b[r].stats[s];
      EXPECT_EQ(x.trainer_id, y.trainer_id);
      EXPECT_EQ(x.partner_id, y.partner_id);
      // Bit-identical, not approximately equal: resume must replay the
      // exact floating-point trajectory.
      EXPECT_EQ(x.own_score, y.own_score);
      EXPECT_EQ(x.partner_score, y.partner_score);
      EXPECT_EQ(x.adopted_partner, y.adopted_partner);
      EXPECT_EQ(x.partner_failed, y.partner_failed);
    }
    EXPECT_EQ(a[r].joined, b[r].joined);
    EXPECT_EQ(a[r].left, b[r].left);
  }
}

// ---- fault schedule grammar ----------------------------------------------------------

TEST(FaultSchedule, ParsesGrammar) {
  const auto schedule =
      FaultSchedule::parse("kill:2@40; drop:0@3 ;delay:1@5:20");
  ASSERT_EQ(schedule.actions().size(), 3u);
  ASSERT_TRUE(schedule.kill_op(2).has_value());
  EXPECT_EQ(*schedule.kill_op(2), 40u);
  EXPECT_FALSE(schedule.kill_op(0).has_value());

  const auto* drop = schedule.message_action(0, 3);
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->kind, comm::FaultAction::Kind::Drop);

  const auto* delay = schedule.message_action(1, 5);
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->kind, comm::FaultAction::Kind::Delay);
  EXPECT_EQ(delay->delay_ms, 20u);

  EXPECT_EQ(schedule.message_action(1, 4), nullptr);
  EXPECT_EQ(schedule.message_action(2, 3), nullptr);
}

TEST(FaultSchedule, RoundTripsThroughStr) {
  const std::string spec = "kill:2@40;drop:0@3;delay:1@5:20";
  const auto schedule = FaultSchedule::parse(spec);
  EXPECT_EQ(schedule.str(), spec);
  EXPECT_EQ(FaultSchedule::parse(schedule.str()).str(), spec);
}

TEST(FaultSchedule, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultSchedule::parse("boom:1@2"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("kill:x@2"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("kill:1"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("delay:1@2"), InvalidArgument);
  EXPECT_THROW(FaultSchedule::parse("kill:1@2@3"), InvalidArgument);
}

TEST(FaultSchedule, RandomKillIsDeterministic) {
  const auto a = FaultSchedule::random_kill(7, 4, 100);
  const auto b = FaultSchedule::random_kill(7, 4, 100);
  EXPECT_EQ(a.str(), b.str());
  ASSERT_EQ(a.actions().size(), 1u);
  EXPECT_EQ(a.actions()[0].kind, comm::FaultAction::Kind::Kill);
  EXPECT_GE(a.actions()[0].rank, 0);
  EXPECT_LT(a.actions()[0].rank, 4);
  EXPECT_LT(a.actions()[0].index, 100u);
}

// ---- failure-aware primitives --------------------------------------------------------

TEST(FailureAwareComm, RecvTimesOutThenLateMessageStillArrives) {
  comm::World world(2);
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      // Nothing sent yet: the deadline fires. The receive is not consumed
      // by timing out — the later message is still claimable.
      EXPECT_THROW((void)comm.recv(1, 7, milliseconds(50)), TimeoutError);
      comm.send(1, 8, comm::Serializer::pack_floats(std::vector<float>{1.0f}));
      const comm::Buffer late = comm.recv(1, 7, kTimeout);
      EXPECT_EQ(comm::Deserializer::unpack_floats(late),
                std::vector<float>({4.0f, 2.0f}));
    } else {
      // Wait for rank 0's go-signal (sent only after its timeout), then
      // deliver the message it was originally waiting for.
      (void)comm.recv(0, 8, kTimeout);
      comm.send(0, 7, comm::Serializer::pack_floats(std::vector<float>{4.0f, 2.0f}));
    }
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], nullptr) << "rank " << r;
  }
}

TEST(FailureAwareComm, SurvivorDetectsKilledPeer) {
  comm::World world(2);
  world.set_fault_schedule(FaultSchedule().kill(1, 0));
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 1) {
      comm.barrier();  // op 0: the injected kill fires here
      ADD_FAILURE() << "rank 1 survived its scheduled kill";
    } else {
      // The peer is dead, not slow: detection is immediate via the
      // liveness flag, well before the deadline.
      EXPECT_THROW((void)comm.recv(1, 3, kTimeout), RankFailedError);
    }
  });
  EXPECT_EQ(errors[0], nullptr);
  ASSERT_NE(errors[1], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[1]), comm::FaultInjected);
}

TEST(FailureAwareComm, ShrinkAgreesOnSurvivorsAndRebuiltCommWorks) {
  comm::World world(4);
  world.set_fault_schedule(FaultSchedule().kill(2, 0));
  std::mutex mutex;
  std::set<int> survivor_sizes;
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 2) {
      comm.barrier();  // dies here
      return;
    }
    comm::Communicator shrunk = comm.shrink(kTimeout);
    EXPECT_EQ(shrunk.size(), 3);
    // The rebuilt communicator is fully functional over the survivors.
    float value[1] = {1.0f};
    shrunk.allreduce(std::span<float>(value, 1));
    EXPECT_FLOAT_EQ(value[0], 3.0f);
    const std::scoped_lock lock(mutex);
    survivor_sizes.insert(shrunk.size());
  });
  EXPECT_EQ(survivor_sizes, std::set<int>({3}));
  ASSERT_NE(errors[2], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[2]), comm::FaultInjected);
}

TEST(FailureAwareComm, DroppedMessageTimesOutAndResendSucceeds) {
  comm::World world(2);
  world.set_fault_schedule(FaultSchedule().drop(0, 0));
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      // User message 0: silently dropped by the schedule.
      comm.send(1, 5, comm::Serializer::pack_floats(std::vector<float>{1.0f}));
      // Wait until the receiver observed the timeout, then resend.
      (void)comm.recv(1, 6, kTimeout);
      comm.send(1, 5, comm::Serializer::pack_floats(std::vector<float>{2.0f}));
    } else {
      EXPECT_THROW((void)comm.recv(0, 5, milliseconds(100)), TimeoutError);
      comm.send(0, 6, comm::Buffer{});
      const comm::Buffer buffer = comm.recv(0, 5, kTimeout);
      EXPECT_EQ(comm::Deserializer::unpack_floats(buffer),
                std::vector<float>({2.0f}));
    }
  });
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(errors[1], nullptr);
}

TEST(FailureAwareComm, DelayedMessageIsDeliveredIntact) {
  comm::World world(2);
  world.set_fault_schedule(FaultSchedule().delay(0, 0, 100));
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 0) {
      const auto before = std::chrono::steady_clock::now();
      comm.send(1, 9, comm::Serializer::pack_floats(std::vector<float>{7.0f}));
      const auto elapsed = std::chrono::steady_clock::now() - before;
      EXPECT_GE(elapsed, milliseconds(100));
    } else {
      const comm::Buffer buffer = comm.recv(0, 9, kTimeout);
      EXPECT_EQ(comm::Deserializer::unpack_floats(buffer),
                std::vector<float>({7.0f}));
    }
  });
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(errors[1], nullptr);
}

// ---- bucketed all-reduce under faults ------------------------------------------------

// Small multi-layer model + tiny buckets: several concurrent ring
// exchanges in flight, so an injected fault lands mid-protocol.
void run_bucketed_sync(comm::Communicator& comm, milliseconds timeout) {
  nn::Model model("m", 100);  // same seed -> same structure on every rank
  const nn::LayerId in = model.add_input(6);
  const nn::LayerId hidden = model.add_dense(in, 16, nn::ActivationKind::Relu);
  model.add_linear(hidden, 4);
  std::vector<float> grads(model.parameter_count(),
                           static_cast<float>(comm.rank() + 1));
  model.load_flat_gradients(grads);
  nn::GradientBucketer bucketer(comm, /*bucket_bytes=*/128);
  const auto weights = model.weights();
  for (std::size_t i = weights.size(); i-- > 0;) {
    bucketer.on_layer_backward(*weights[i]);
  }
  bucketer.finish({&model}, timeout);
}

TEST(BucketerFault, RankKilledMidBucketSurfacesAsRankFailed) {
  comm::World world(3);
  // Op 4 lands inside the ring protocol (launching a bucket already costs
  // ops 0-1): rank 1 dies with chunks of several buckets still in flight.
  world.set_fault_schedule(FaultSchedule().kill(1, 4));
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    if (comm.rank() == 1) {
      run_bucketed_sync(comm, kTimeout);  // killed mid-way by the schedule
      ADD_FAILURE() << "rank 1 survived its scheduled kill";
    } else {
      // Survivors must fail fast (liveness detection, not deadline) and
      // typed — never hang inside finish().
      EXPECT_THROW(run_bucketed_sync(comm, kTimeout), RankFailedError);
    }
  });
  EXPECT_EQ(errors[0], nullptr);
  ASSERT_NE(errors[1], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[1]), comm::FaultInjected);
  EXPECT_EQ(errors[2], nullptr);
}

TEST(BucketerFault, DroppedBucketChunkHitsDeadlineNotAHang) {
  comm::World world(2);
  // Bucketer sends are user-level messages, so drop schedules apply: rank
  // 0's third message (a mid-protocol chunk) vanishes and the ring can
  // never complete. Both ranks must exit their finish() within the
  // deadline — with TimeoutError, or RankFailedError when the partner's
  // own timeout already made it depart. Returning at all is the no-hang
  // assertion.
  world.set_fault_schedule(FaultSchedule().drop(0, 2));
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    try {
      run_bucketed_sync(comm, milliseconds(300));
      ADD_FAILURE() << "rank " << comm.rank()
                    << " completed despite the dropped chunk";
    } catch (const TimeoutError&) {
    } catch (const RankFailedError&) {
    }
  });
  EXPECT_EQ(errors[0], nullptr);
  EXPECT_EQ(errors[1], nullptr);
}

// ---- chaos sweep ---------------------------------------------------------------------
//
// >= 12 seeded schedules across the four failure windows (mid-step,
// mid-tournament, mid-fetch, mid-preload). Every rank either completes or
// dies with a typed error; the harness itself terminating is the no-hang
// assertion (deadlines bound every blocking path).

std::uint64_t chaos_seed_base() {
  // The CI chaos job sweeps different seed planes via LTFB_CHAOS_SEED.
  const char* env = std::getenv("LTFB_CHAOS_SEED");
  return env == nullptr
             ? 0
             : static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10)) *
                   1000;
}

void chaos_ltfb_run(int world_size, int rpt, const FaultSchedule& schedule) {
  const data::Dataset dataset = tiny_dataset(240, 81);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 82);
  DistributedLtfbConfig config;
  config.ranks_per_trainer = rpt;
  config.batch_size = 8;
  config.ltfb.steps_per_round = 2;
  config.ltfb.rounds = 2;
  config.ltfb.pretrain_steps = 1;
  config.model = tiny_config();
  config.seed = 83;
  config.comm_timeout = kTimeout;

  comm::World world(world_size);
  world.set_fault_schedule(schedule);
  std::mutex mutex;
  std::vector<DistributedLtfbOutcome> outcomes;
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    const auto outcome = run_distributed_ltfb(comm, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    outcomes.push_back(outcome);
  });
  for (int r = 0; r < world_size; ++r) {
    expect_typed_or_clean(errors[static_cast<std::size_t>(r)], r);
  }
  for (const auto& outcome : outcomes) {
    if (outcome.aborted) continue;
    EXPECT_TRUE(std::isfinite(outcome.final_validation_loss))
        << "trainer " << outcome.trainer_id;
  }
}

void chaos_datastore_run(const BundleFixture& fx, const FaultSchedule& schedule,
                         bool kill_during_preload) {
  datastore::BundleCatalog catalog(fx.paths);
  comm::World world(4);
  world.set_fault_schedule(schedule);
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    // Explicit repair-rendezvous deadline (instead of the derived default)
    // to exercise the configurable shrink budget under chaos.
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded, 0, {},
                               kTimeout, 6 * kTimeout);
    store.preload();
    for (int step = 0; step < 6; ++step) {
      const std::vector<data::SampleId> wanted{
          static_cast<data::SampleId>(comm.rank()),
          static_cast<data::SampleId>(39 - comm.rank()),
          static_cast<data::SampleId>((comm.rank() * 7 + step) % 40)};
      const auto got = store.fetch(wanted);
      ASSERT_EQ(got.size(), wanted.size());
      for (std::size_t i = 0; i < wanted.size(); ++i) {
        EXPECT_EQ(got[i].id, wanted[i]);
        EXPECT_FLOAT_EQ(got[i].images[0],
                        static_cast<float>(wanted[i]) * 3.0f);
      }
    }
  });
  (void)kill_during_preload;
  for (int r = 0; r < 4; ++r) {
    expect_typed_or_clean(errors[static_cast<std::size_t>(r)], r);
  }
}

TEST(ChaosSweep, KillDuringDataParallelStep) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // rpt=2: deaths land mostly inside gradient all-reduces.
    chaos_ltfb_run(4, 2,
                   FaultSchedule::random_kill(chaos_seed_base() + seed, 4, 40));
  }
}

TEST(ChaosSweep, KillDuringTournament) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // rpt=1: every comm op is a tournament exchange, split, or shrink.
    chaos_ltfb_run(4, 1,
                   FaultSchedule::random_kill(chaos_seed_base() + 100 + seed,
                                              4, 8));
  }
}

TEST(ChaosSweep, KillDuringFetchExchange) {
  const BundleFixture fx = make_bundles("chaos_fetch", 40, 8);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    chaos_datastore_run(
        fx, FaultSchedule::random_kill(chaos_seed_base() + 200 + seed, 4, 60),
        false);
  }
}

TEST(ChaosSweep, KillDuringPreload) {
  const BundleFixture fx = make_bundles("chaos_preload", 40, 8);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Max op 5: deaths land in the preload / directory-build broadcasts.
    chaos_datastore_run(
        fx, FaultSchedule::random_kill(chaos_seed_base() + 300 + seed, 4, 5),
        true);
  }
}

// ---- survivor tournaments ------------------------------------------------------------

TEST(SurvivorTournament, PopulationRoutesAroundDeadLeader) {
  const data::Dataset dataset = tiny_dataset(240, 84);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 85);
  DistributedLtfbConfig config;
  config.ranks_per_trainer = 1;
  config.batch_size = 8;
  config.ltfb.steps_per_round = 2;
  config.ltfb.rounds = 3;
  config.ltfb.pretrain_steps = 1;
  config.model = tiny_config();
  config.seed = 86;
  config.comm_timeout = kTimeout;
  // Explicit survivor-agreement budget (default would derive 4x) so the
  // configurable rendezvous deadline is exercised under a real kill.
  config.shrink_timeout = 6 * kTimeout;

  // Per-rank op sequence (rpt=1): split, split, then per round
  // sendrecv + shrink. Op 4 is rank 2's round-1 exchange: it dies
  // mid-tournament, after a full healthy round.
  comm::World world(4);
  world.set_fault_schedule(FaultSchedule().kill(2, 4));
  std::mutex mutex;
  std::vector<DistributedLtfbOutcome> outcomes;
  auto errors = world.run_ranks([&](comm::Communicator& comm) {
    const auto outcome = run_distributed_ltfb(comm, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    outcomes.push_back(outcome);
  });

  ASSERT_NE(errors[2], nullptr);
  EXPECT_THROW(std::rethrow_exception(errors[2]), comm::FaultInjected);
  ASSERT_EQ(outcomes.size(), 3u);

  std::size_t degraded = 0;
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.aborted);
    EXPECT_NE(outcome.trainer_id, 2);
    EXPECT_TRUE(std::isfinite(outcome.final_validation_loss));
    degraded += outcome.partner_failures;
    // Every completed round either dueled, sat out, or was degraded.
    EXPECT_LE(outcome.tournaments_won + outcome.adoptions +
                  outcome.partner_failures,
              config.ltfb.rounds);
    ASSERT_EQ(outcome.history.size(), config.ltfb.rounds);
    for (const auto& record : outcome.history) {
      ASSERT_EQ(record.stats.size(), 1u);
      EXPECT_EQ(record.stats[0].trainer_id, outcome.trainer_id);
    }
  }
  // Exactly one survivor was mid-exchange with the victim.
  EXPECT_EQ(degraded, 1u);
}

// ---- data store repair ---------------------------------------------------------------

TEST(DataStoreRepair, CapacityBoundAdoptionServesOrphansFromFiles) {
  const BundleFixture fx = make_bundles("capacity_repair", 30, 6);
  datastore::BundleCatalog catalog(fx.paths);
  const std::size_t sample_bytes = fx.samples[0].byte_size();

  std::mutex mutex;
  std::size_t total_disk_resident = 0;
  std::size_t total_faults = 0;
  comm::World::run(3, [&](comm::Communicator& comm) {
    // Room for the 10 preloaded samples plus ONE adopted orphan per rank.
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded,
                               11 * sample_bytes + 1, {}, milliseconds(300));
    store.preload();
    if (comm.rank() == 2) {
      return;  // departs; its 10 samples become orphans
    }
    // Survivors request the departed rank's samples: the exchange times
    // out, the directory repairs (shrink + re-adoption), and the fetch
    // retry succeeds. Each survivor can adopt only 1 of its 5 orphans in
    // memory; the other 4 are disk-resident, served by file reads.
    const std::vector<data::SampleId> wanted{2, 5, 8, 11, 14, 17, 20, 23,
                                             26, 29};
    const auto got = store.fetch(wanted);
    ASSERT_EQ(got.size(), wanted.size());
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      EXPECT_EQ(got[i].id, wanted[i]);
      EXPECT_FLOAT_EQ(got[i].scalars[0], static_cast<float>(wanted[i]) * 2.0f);
    }
    // A second fetch of disk-resident samples works too (fresh reads).
    const auto again = store.fetch(wanted);
    ASSERT_EQ(again.size(), wanted.size());
    const std::scoped_lock lock(mutex);
    total_disk_resident += store.disk_resident_samples();
    total_faults += store.stats().faults;
  });
  // 10 orphans, 2 survivors, 1 in-memory adoption each: 8 disk-resident.
  EXPECT_EQ(total_disk_resident, 8u);
  EXPECT_GE(total_faults, 2u);
}

// ---- population checkpoint format ----------------------------------------------------

PopulationCheckpoint synthetic_checkpoint() {
  PopulationCheckpoint ckpt;
  ckpt.round = 7;
  ckpt.pairing_seed = 0xabcdef01ull;
  TrainerSlot slot;
  slot.trainer.trainer_id = 3;
  slot.trainer.learning_rate = 1.5e-3f;
  slot.trainer.steps = 42;
  slot.trainer.reader_epoch = 2;
  slot.trainer.reader_cursor = 9;
  slot.trainer.generator = {1.0f, -2.5f, 3.25f};
  slot.trainer.discriminator = {0.5f};
  slot.trainer.optimizer_state = {4.0f, 5.0f};
  slot.tournaments_won = 4;
  slot.adoptions = 3;
  slot.host_rank = 2;
  slot.joined_round = 5;
  slot.shard_manifest = {11, 22, 33, 44};
  ckpt.trainers.push_back(slot);
  RoundRecord record;
  record.round = 6;
  record.stats = {{3, 1, 0.25, 0.75, false, true}};
  record.joined = {3};
  record.left = {1, 2};
  ckpt.history.push_back(record);
  return ckpt;
}

TEST(PopulationCheckpointFormat, RoundTripsAllFields) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_pop_roundtrip.pop";
  const PopulationCheckpoint saved = synthetic_checkpoint();
  save_population_checkpoint(path, saved);
  const PopulationCheckpoint loaded = load_population_checkpoint(path);
  EXPECT_EQ(loaded.round, saved.round);
  EXPECT_EQ(loaded.pairing_seed, saved.pairing_seed);
  ASSERT_EQ(loaded.trainers.size(), 1u);
  const TrainerSlot& slot = loaded.trainers[0];
  EXPECT_EQ(slot.trainer.trainer_id, 3);
  EXPECT_EQ(slot.trainer.learning_rate, 1.5e-3f);
  EXPECT_EQ(slot.trainer.steps, 42u);
  EXPECT_EQ(slot.trainer.reader_epoch, 2u);
  EXPECT_EQ(slot.trainer.reader_cursor, 9u);
  EXPECT_EQ(slot.trainer.generator, saved.trainers[0].trainer.generator);
  EXPECT_EQ(slot.trainer.discriminator,
            saved.trainers[0].trainer.discriminator);
  EXPECT_EQ(slot.trainer.optimizer_state,
            saved.trainers[0].trainer.optimizer_state);
  EXPECT_EQ(slot.tournaments_won, 4u);
  EXPECT_EQ(slot.adoptions, 3u);
  EXPECT_EQ(slot.host_rank, 2);
  EXPECT_EQ(slot.joined_round, 5u);
  EXPECT_EQ(slot.shard_manifest, saved.trainers[0].shard_manifest);
  expect_identical_history(loaded.history, saved.history);
  // Atomic write: no temp sibling survives a successful save.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(PopulationCheckpointFormat, TruncationThrowsFormatError) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_pop_truncated.pop";
  save_population_checkpoint(path, synthetic_checkpoint());
  const auto full = std::filesystem::file_size(path);
  for (const std::uintmax_t keep :
       {std::uintmax_t{4}, std::uintmax_t{21}, full / 2, full - 1}) {
    std::filesystem::resize_file(path, keep);
    EXPECT_THROW((void)load_population_checkpoint(path), FormatError)
        << "truncated to " << keep << " bytes";
  }
}

TEST(PopulationCheckpointFormat, BadMagicThrowsFormatError) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_pop_badmagic.pop";
  save_population_checkpoint(path, synthetic_checkpoint());
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(0);
  file.put('X');
  file.close();
  EXPECT_THROW((void)load_population_checkpoint(path), FormatError);
}

TEST(PopulationCheckpointFormat, MemoryEncodeDecodeRoundTrips) {
  const PopulationCheckpoint saved = synthetic_checkpoint();
  const std::vector<std::uint8_t> bytes = encode_population_checkpoint(saved);
  const PopulationCheckpoint loaded =
      decode_population_checkpoint(bytes.data(), bytes.size(), "<test>");
  EXPECT_EQ(loaded.round, saved.round);
  EXPECT_EQ(loaded.pairing_seed, saved.pairing_seed);
  ASSERT_EQ(loaded.trainers.size(), 1u);
  EXPECT_EQ(loaded.trainers[0].host_rank, saved.trainers[0].host_rank);
  EXPECT_EQ(loaded.trainers[0].joined_round, saved.trainers[0].joined_round);
  EXPECT_EQ(loaded.trainers[0].shard_manifest,
            saved.trainers[0].shard_manifest);
  EXPECT_EQ(loaded.trainers[0].trainer.generator,
            saved.trainers[0].trainer.generator);
  expect_identical_history(loaded.history, saved.history);
}

// Reduced-precision image (v4): weight arrays quantized to bf16/fp16,
// optimizer state always exact fp32 (Adam moments need the range, and the
// float-encoded length prefixes must survive exactly).
TEST(PopulationCheckpointFormat, ReducedPrecisionV4RoundTrips) {
  const PopulationCheckpoint saved = synthetic_checkpoint();
  for (const auto dtype : {nn::WeightsDtype::Bf16, nn::WeightsDtype::Fp16}) {
    const auto kind = nn::half_kind(dtype);
    const std::vector<std::uint8_t> bytes =
        encode_population_checkpoint(saved, dtype);
    EXPECT_EQ(bytes[8], 4u);  // version byte: reduced-precision revision
    const PopulationCheckpoint loaded =
        decode_population_checkpoint(bytes.data(), bytes.size(), "<v4>");
    EXPECT_EQ(loaded.round, saved.round);
    EXPECT_EQ(loaded.pairing_seed, saved.pairing_seed);
    ASSERT_EQ(loaded.trainers.size(), 1u);
    const GanTrainerState& got = loaded.trainers[0].trainer;
    const GanTrainerState& want = saved.trainers[0].trainer;
    EXPECT_EQ(got.learning_rate, want.learning_rate);
    EXPECT_EQ(got.steps, want.steps);
    ASSERT_EQ(got.generator.size(), want.generator.size());
    for (std::size_t i = 0; i < want.generator.size(); ++i) {
      EXPECT_EQ(got.generator[i], tensor::quantize(want.generator[i], kind));
    }
    ASSERT_EQ(got.discriminator.size(), want.discriminator.size());
    for (std::size_t i = 0; i < want.discriminator.size(); ++i) {
      EXPECT_EQ(got.discriminator[i],
                tensor::quantize(want.discriminator[i], kind));
    }
    // Optimizer state is never reduced.
    EXPECT_EQ(got.optimizer_state, want.optimizer_state);
    expect_identical_history(loaded.history, saved.history);
    // Lossless at stored precision: re-encoding the loaded population at
    // the same dtype reproduces the image byte for byte.
    EXPECT_EQ(encode_population_checkpoint(loaded, dtype), bytes);
  }
  // The defaulted (fp32) encoding still writes the legacy v3 image.
  EXPECT_EQ(encode_population_checkpoint(saved)[8], 3u);
}

TEST(PopulationCheckpointFormat, ReducedPrecisionV4FileRoundTrips) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_pop_half.pop";
  const PopulationCheckpoint saved = synthetic_checkpoint();
  save_population_checkpoint(path, saved, nn::WeightsDtype::Bf16);
  const PopulationCheckpoint loaded = load_population_checkpoint(path);
  ASSERT_EQ(loaded.trainers.size(), 1u);
  EXPECT_EQ(loaded.trainers[0].trainer.generator,
            std::vector<float>({1.0f, -2.5f, 3.25f}));  // bf16-exact values
  EXPECT_EQ(loaded.trainers[0].trainer.optimizer_state,
            saved.trainers[0].trainer.optimizer_state);
}

// Forward compatibility: a writer newer than this reader (version 5, which
// does not exist yet) must be rejected with a clear FormatError naming the
// version — never misparsed as if the new fields weren't there.
TEST(PopulationCheckpointFormat, FutureVersionFailsWithClearError) {
  std::vector<std::uint8_t> bytes =
      encode_population_checkpoint(synthetic_checkpoint());
  // Layout: 8 magic bytes, then the u32 version. Version 5 is one past
  // the newest supported revision (v4, reduced-precision weights).
  ASSERT_GE(bytes.size(), 12u);
  bytes[8] = 5;
  bytes[9] = bytes[10] = bytes[11] = 0;
  try {
    (void)decode_population_checkpoint(bytes.data(), bytes.size(), "<v5>");
    FAIL() << "future version decoded without error";
  } catch (const FormatError& err) {
    EXPECT_NE(std::string(err.what())
                  .find("unsupported population checkpoint version"),
              std::string::npos)
        << err.what();
  }
}

// Every truncation point must throw FormatError — in particular the ones
// that land inside the v3 migration fields (host_rank / joined_round /
// shard_manifest and the per-record joined/left lists), which a predating
// reader never parsed.
TEST(PopulationCheckpointFormat, TruncationFuzzAlwaysFormatError) {
  const std::vector<std::uint8_t> bytes =
      encode_population_checkpoint(synthetic_checkpoint());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW(
        (void)decode_population_checkpoint(bytes.data(), keep, "<trunc>"),
        FormatError)
        << "truncated to " << keep << " of " << bytes.size() << " bytes";
  }
}

// Single-byte corruption anywhere in the image must either still decode
// (the flip landed in payload data) or throw FormatError — never crash,
// hang, or throw anything else. Exercises the sanity ceilings on the v3
// manifest/churn-list counts.
TEST(PopulationCheckpointFormat, ByteFlipFuzzNeverCrashes) {
  const std::vector<std::uint8_t> pristine =
      encode_population_checkpoint(synthetic_checkpoint());
  std::vector<std::uint8_t> bytes = pristine;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    bytes[pos] ^= 0xff;
    try {
      (void)decode_population_checkpoint(bytes.data(), bytes.size(),
                                         "<flip>");
    } catch (const FormatError&) {
      // Rejected with the one sanctioned error type: fine.
    }
    bytes[pos] = pristine[pos];
  }
}

// ---- local driver checkpoint/resume --------------------------------------------------

LocalLtfbDriver make_local_driver(const data::Dataset& dataset,
                                  const data::SplitIndices& splits,
                                  LtfbConfig ltfb) {
  PopulationConfig population;
  population.num_trainers = 4;
  population.batch_size = 16;
  population.model = tiny_config();
  population.seed = 91;
  return LocalLtfbDriver(build_population(dataset, splits, population),
                         std::move(ltfb));
}

TEST(LocalResume, RestartReproducesBitIdenticalHistory) {
  const data::Dataset dataset = tiny_dataset(400, 90);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 92);
  const auto path =
      (std::filesystem::temp_directory_path() / "ltfb_local_resume.pop")
          .string();

  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 4;
  ltfb.pretrain_steps = 2;

  // Uninterrupted reference run, checkpointing mid-flight at round 2.
  LtfbConfig with_ckpt = ltfb;
  with_ckpt.checkpoint_path = path;
  with_ckpt.checkpoint_every = 2;
  LocalLtfbDriver full = make_local_driver(dataset, splits, with_ckpt);
  full.pretrain();
  full.run_round();
  full.run_round();
  // Simulated crash here: the round-2 checkpoint is on disk. Snapshot it
  // (the reference run keeps going and will overwrite `path` at round 4),
  // then finish the reference run to know the ground-truth history.
  const PopulationCheckpoint at_crash = load_population_checkpoint(path);
  EXPECT_EQ(at_crash.round, 2u);
  const auto crash_path =
      (std::filesystem::temp_directory_path() / "ltfb_local_resume_crash.pop")
          .string();
  std::filesystem::copy_file(path, crash_path,
                             std::filesystem::copy_options::overwrite_existing);
  full.run_round();
  full.run_round();
  ASSERT_EQ(full.history().size(), 4u);

  // Restarted run: fresh trainers, state restored from the checkpoint.
  LtfbConfig resumed_config = ltfb;
  resumed_config.resume_from = crash_path;
  LocalLtfbDriver resumed = make_local_driver(dataset, splits, resumed_config);
  EXPECT_TRUE(resumed.resumed());
  EXPECT_EQ(resumed.rounds_completed(), 2u);
  resumed.run();  // skips pretrain, runs rounds 2 and 3

  expect_identical_history(resumed.history(), full.history());
  // The models themselves are bit-identical too, not just the scores.
  for (std::size_t t = 0; t < full.population(); ++t) {
    EXPECT_EQ(resumed.trainer(t).model().generator_weights(),
              full.trainer(t).model().generator_weights());
    EXPECT_EQ(resumed.trainer(t).model().discriminator_weights(),
              full.trainer(t).model().discriminator_weights());
  }
}

TEST(LocalResume, MismatchedPairingSeedIsRejected) {
  const data::Dataset dataset = tiny_dataset(240, 93);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 94);
  const auto path =
      (std::filesystem::temp_directory_path() / "ltfb_seed_mismatch.pop")
          .string();
  LtfbConfig ltfb;
  ltfb.steps_per_round = 1;
  ltfb.rounds = 1;
  LocalLtfbDriver driver = make_local_driver(dataset, splits, ltfb);
  driver.run_round();
  driver.save_checkpoint(path);

  LtfbConfig wrong = ltfb;
  wrong.resume_from = path;
  wrong.pairing_seed = 12345;  // different tournament trajectory
  EXPECT_THROW(make_local_driver(dataset, splits, wrong), InvalidArgument);
}

// ---- distributed kill + restart ------------------------------------------------------

TEST(DistributedResume, KilledRunResumesBitIdentically) {
  const data::Dataset dataset = tiny_dataset(240, 95);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 96);
  const auto dir = std::filesystem::temp_directory_path() / "ltfb_dist_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DistributedLtfbConfig config;
  config.ranks_per_trainer = 1;
  config.batch_size = 8;
  config.ltfb.steps_per_round = 2;
  config.ltfb.rounds = 4;
  config.ltfb.pretrain_steps = 1;
  config.model = tiny_config();
  config.seed = 97;
  config.comm_timeout = kTimeout;

  // Ground truth: the same run, never interrupted.
  std::mutex mutex;
  std::vector<DistributedLtfbOutcome> reference;
  comm::World::run(2, [&](comm::Communicator& comm) {
    const auto outcome = run_distributed_ltfb(comm, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    reference.push_back(outcome);
  });
  ASSERT_EQ(reference.size(), 2u);

  // Doomed run: slot checkpoints at round 2, both ranks killed in round 2.
  // Per-rank op sequence (rpt=1): split, split, then sendrecv + shrink per
  // round — op 6 is the round-2 exchange, after the checkpoints landed.
  DistributedLtfbConfig doomed = config;
  doomed.checkpoint_dir = dir.string();
  doomed.checkpoint_every = 2;
  {
    comm::World world(2);
    world.set_fault_schedule(FaultSchedule().kill(0, 6).kill(1, 6));
    auto errors = world.run_ranks([&](comm::Communicator& comm) {
      (void)run_distributed_ltfb(comm, dataset, splits, doomed);
    });
    for (int r = 0; r < 2; ++r) {
      ASSERT_NE(errors[static_cast<std::size_t>(r)], nullptr);
      EXPECT_THROW(std::rethrow_exception(errors[static_cast<std::size_t>(r)]),
                   comm::FaultInjected);
    }
  }
  EXPECT_TRUE(std::filesystem::exists(dir / "trainer_0.pop"));
  EXPECT_TRUE(std::filesystem::exists(dir / "trainer_1.pop"));

  // Restart from the slot checkpoints: history must match the
  // uninterrupted reference bit for bit.
  DistributedLtfbConfig restart = config;
  restart.resume_from = dir.string();
  std::vector<DistributedLtfbOutcome> resumed;
  comm::World::run(2, [&](comm::Communicator& comm) {
    const auto outcome = run_distributed_ltfb(comm, dataset, splits, restart);
    const std::scoped_lock lock(mutex);
    resumed.push_back(outcome);
  });
  ASSERT_EQ(resumed.size(), 2u);

  for (const auto& outcome : resumed) {
    const auto match =
        std::find_if(reference.begin(), reference.end(), [&](const auto& ref) {
          return ref.trainer_id == outcome.trainer_id;
        });
    ASSERT_NE(match, reference.end());
    EXPECT_EQ(outcome.final_validation_loss, match->final_validation_loss);
    EXPECT_EQ(outcome.tournaments_won, match->tournaments_won);
    EXPECT_EQ(outcome.adoptions, match->adoptions);
    expect_identical_history(outcome.history, match->history);
  }
}

// ---- atomic history export -----------------------------------------------------------

TEST(HistoryCsvAtomicity, FailedWriteLeavesNoPartialFile) {
  std::vector<RoundRecord> history(1);
  history[0].round = 0;
  history[0].stats = {{0, 1, 0.5, 0.4, true, false}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "ltfb_no_such_dir" /
       "history.csv")
          .string();
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              "ltfb_no_such_dir");
  EXPECT_FALSE(export_history_csv(history, path));
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(HistoryCsvAtomicity, SuccessfulWriteReplacesTempFile) {
  std::vector<RoundRecord> history(1);
  history[0].round = 0;
  history[0].stats = {{0, 1, 0.5, 0.4, true, true}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "ltfb_history_atomic.csv")
          .string();
  ASSERT_TRUE(export_history_csv(history, path));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "0,round,0,1,0.500000,0.400000,1,1,0.000000,0.000000");
}

}  // namespace
