// Distributed-observability tests (DESIGN.md §11): the in-band cluster
// metric aggregation that runs at every LTFB round boundary. Verifies the
// "aggregation is honest" contract — per-round cluster aggregates in
// metrics_timeseries.jsonl equal the fold of the per-rank deltas, and the
// round-stable totals summed over all rounds match the final per-rank
// telemetry registries — plus the PR 3 fault interplay: a killed rank is
// reported missing and excluded from later rounds instead of stalling the
// aggregation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/ltfb_comm.hpp"
#include "minijson.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;
using ltfb::telemetry::Registry;
using testjson::JsonParser;
using testjson::JsonValue;

class TelemetryGuard {
 public:
  TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.clear_trace();
    registry.reset_metrics();
    registry.set_enabled(true);
  }
  ~TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.set_enabled(false);
    registry.clear_trace();
    registry.reset_metrics();
  }
};

gan::CycleGanConfig tiny_config() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

DistributedLtfbConfig base_config() {
  DistributedLtfbConfig config;
  config.ranks_per_trainer = 2;
  config.batch_size = 16;
  config.ltfb.steps_per_round = 4;
  config.ltfb.rounds = 3;
  config.ltfb.pretrain_steps = 4;
  config.model = tiny_config();
  config.seed = 60;
  return config;
}

std::string temp_timeseries(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path.string();
}

std::vector<JsonValue> read_jsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing timeseries at " << path;
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    lines.push_back(JsonParser(line).parse());
  }
  return lines;
}

TEST(Observability, ClusterAggregatesMatchPerRankRegistries) {
  TelemetryGuard guard;
  const data::Dataset dataset = tiny_dataset(400, 61);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 62);
  auto config = base_config();
  config.metrics_timeseries_path =
      temp_timeseries("ltfb_obs_timeseries.jsonl");

  comm::World::run(4, [&](comm::Communicator& world) {
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    EXPECT_FALSE(outcome.aborted);
  });

  const auto lines = read_jsonl(config.metrics_timeseries_path);
  ASSERT_EQ(lines.size(), config.ltfb.rounds);

  std::uint64_t steps_in_timeseries = 0;
  std::uint64_t rounds_counter_in_timeseries = 0;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    const JsonValue& line = lines[r];
    EXPECT_EQ(line.at("round").number, static_cast<double>(r));
    EXPECT_EQ(line.at("ranks_expected").number, 4.0);
    EXPECT_EQ(line.at("ranks_reporting").number, 4.0);
    ASSERT_EQ(line.at("reporting_ranks").array.size(), 4u);
    ASSERT_EQ(line.at("per_rank").object.size(), 4u);

    // The honest-aggregation invariant: every cluster counter equals the
    // sum of the per-rank deltas shipped the same round.
    std::map<std::string, std::uint64_t> summed;
    for (const auto& [rank, stats] : line.at("per_rank").object) {
      for (const auto& [name, value] : stats.at("counters").object) {
        summed[name] += static_cast<std::uint64_t>(value.number);
      }
    }
    for (const auto& [name, value] : line.at("counters").object) {
      EXPECT_EQ(static_cast<std::uint64_t>(value.number), summed[name])
          << "round " << r << " cluster counter " << name
          << " != sum of per-rank deltas";
    }
    for (const auto& [name, expected] : summed) {
      EXPECT_TRUE(line.at("counters").has(name))
          << "round " << r << ": per-rank counter " << name
          << " missing from cluster aggregate";
      (void)expected;
    }

    // Step-time statistics are internally consistent.
    const JsonValue& st = line.at("step_time");
    EXPECT_LE(st.at("min_s").number, st.at("mean_s").number);
    EXPECT_LE(st.at("mean_s").number, st.at("max_s").number);
    EXPECT_NEAR(st.at("gap_s").number,
                st.at("max_s").number - st.at("min_s").number, 1e-12);

    // Tournament fields: a live winner and a sane adoption rate.
    EXPECT_GE(line.at("winner_trainer").number, 0.0);
    EXPECT_LT(line.at("winner_trainer").number, 2.0);
    EXPECT_GE(line.at("adoption_rate").number, 0.0);
    EXPECT_LE(line.at("adoption_rate").number, 1.0);
    EXPECT_GT(line.at("round_wall_s").number, 0.0);

    const JsonValue& timers = line.at("timers");
    if (timers.has("trainer/step")) {
      steps_in_timeseries += static_cast<std::uint64_t>(
          timers.at("trainer/step").at("count").number);
    }
    if (line.at("counters").has("ltfb/rounds")) {
      rounds_counter_in_timeseries += static_cast<std::uint64_t>(
          line.at("counters").at("ltfb/rounds").number);
    }
  }

  // Round-stable totals summed over every round equal the final per-rank
  // registries: nothing was double-counted or dropped in flight. (Only
  // metrics that do not advance after the last round boundary qualify —
  // comm counters keep moving during the final eval broadcast.)
  auto& registry = Registry::instance();
  std::uint64_t steps_in_registry = 0;
  std::uint64_t rounds_in_registry = 0;
  for (int rank = 0; rank < 4; ++rank) {
    const auto snap = registry.snapshot_rank(rank);
    for (const auto& t : snap.timers) {
      if (t.name == "trainer/step") steps_in_registry += t.count;
    }
    for (const auto& c : snap.counters) {
      if (c.name == "ltfb/rounds") rounds_in_registry += c.value;
    }
  }
  // 4 ranks x 3 rounds x 4 steps.
  EXPECT_EQ(steps_in_timeseries, 48u);
  EXPECT_EQ(steps_in_timeseries, steps_in_registry);
  // Every rank counts every round.
  EXPECT_EQ(rounds_counter_in_timeseries, 12u);
  EXPECT_EQ(rounds_counter_in_timeseries, rounds_in_registry);
}

TEST(Observability, InactiveWithoutOutputsPerformsNoAggregation) {
  TelemetryGuard guard;
  const data::Dataset dataset = tiny_dataset(400, 61);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 62);
  auto config = base_config();
  // Telemetry enabled but no timeseries path and no live progress: the
  // aggregator must stay inactive (zero comm, no artifact).
  config.metrics_timeseries_path.clear();

  comm::World::run(4, [&](comm::Communicator& world) {
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    EXPECT_FALSE(outcome.aborted);
  });
  EXPECT_EQ(
      Registry::instance().counter("ltfb/metrics_rounds_aggregated").value(),
      0u);
}

TEST(Observability, DeadRankReportedMissingAndExcluded) {
  TelemetryGuard guard;
  const data::Dataset dataset = tiny_dataset(400, 61);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 62);
  auto config = base_config();
  config.ranks_per_trainer = 1;  // every rank is a leader
  config.ltfb.rounds = 4;
  config.ltfb.steps_per_round = 2;
  config.ltfb.pretrain_steps = 2;
  config.comm_timeout = std::chrono::milliseconds(2000);
  config.metrics_timeseries_path =
      temp_timeseries("ltfb_obs_fault_timeseries.jsonl");

  comm::World world(4);
  world.set_fault_schedule(comm::FaultSchedule().kill(3, 10));
  const auto errors = world.run_ranks([&](comm::Communicator& comm) {
    (void)run_distributed_ltfb(comm, dataset, splits, config);
  });
  // The victim unwound with the injected fault; survivors finished.
  ASSERT_NE(errors[3], nullptr);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], nullptr) << "rank " << r;
  }

  const auto lines = read_jsonl(config.metrics_timeseries_path);
  ASSERT_FALSE(lines.empty());
  for (const auto& line : lines) {
    EXPECT_EQ(line.at("ranks_expected").number, 4.0);
  }
  // After the kill the survivors keep aggregating without rank 3: the
  // final round reports fewer ranks and rank 3 is not among them.
  const JsonValue& last = lines.back();
  EXPECT_LT(last.at("ranks_reporting").number, 4.0);
  for (const auto& rank : last.at("reporting_ranks").array) {
    EXPECT_NE(rank.number, 3.0);
  }
}

}  // namespace
