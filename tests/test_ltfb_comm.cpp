// Integration tests for distributed LTFB over the message-passing
// substrate: trainer grouping, data-parallel equivalence, tournament
// exchange between leader ranks, and winner propagation inside trainers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <set>

#include "core/ltfb_comm.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;

gan::CycleGanConfig tiny_config() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

DistributedLtfbConfig base_config() {
  DistributedLtfbConfig config;
  config.ranks_per_trainer = 1;
  config.batch_size = 16;
  config.ltfb.steps_per_round = 4;
  config.ltfb.rounds = 3;
  config.ltfb.pretrain_steps = 4;
  config.model = tiny_config();
  config.seed = 60;
  return config;
}

TEST(DistributedLtfb, FourSingleRankTrainers) {
  const data::Dataset dataset = tiny_dataset(400, 61);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 62);
  const auto config = base_config();

  std::mutex mutex;
  std::vector<DistributedLtfbOutcome> outcomes;
  comm::World::run(4, [&](comm::Communicator& world) {
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    outcomes.push_back(outcome);
  });

  ASSERT_EQ(outcomes.size(), 4u);
  std::set<int> trainer_ids;
  for (const auto& outcome : outcomes) {
    trainer_ids.insert(outcome.trainer_id);
    EXPECT_TRUE(std::isfinite(outcome.final_validation_loss));
    EXPECT_GT(outcome.final_validation_loss, 0.0);
    // Every round either keeps or adopts.
    EXPECT_EQ(outcome.tournaments_won + outcome.adoptions,
              config.ltfb.rounds);
  }
  EXPECT_EQ(trainer_ids.size(), 4u);
}

TEST(DistributedLtfb, MultiRankTrainersStaySynchronized) {
  const data::Dataset dataset = tiny_dataset(400, 63);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 64);
  auto config = base_config();
  config.ranks_per_trainer = 2;
  config.ltfb.rounds = 2;

  std::mutex mutex;
  std::map<int, std::vector<DistributedLtfbOutcome>> by_trainer;
  comm::World::run(4, [&](comm::Communicator& world) {  // 2 trainers x 2
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    by_trainer[outcome.trainer_id].push_back(outcome);
  });

  ASSERT_EQ(by_trainer.size(), 2u);
  for (const auto& [trainer_id, ranks] : by_trainer) {
    ASSERT_EQ(ranks.size(), 2u);
    // Leader broadcast the final metrics: both ranks agree exactly.
    EXPECT_DOUBLE_EQ(ranks[0].final_validation_loss,
                     ranks[1].final_validation_loss);
    EXPECT_EQ(ranks[0].tournaments_won, ranks[1].tournaments_won);
  }
}

TEST(DistributedLtfb, SingleTrainerIsPlainDataParallelTraining) {
  const data::Dataset dataset = tiny_dataset(300, 65);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 66);
  auto config = base_config();
  config.ranks_per_trainer = 2;
  config.ltfb.rounds = 2;

  std::mutex mutex;
  std::vector<DistributedLtfbOutcome> outcomes;
  comm::World::run(2, [&](comm::Communicator& world) {  // one trainer
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    outcomes.push_back(outcome);
  });
  for (const auto& outcome : outcomes) {
    // No partner ever exists: no wins, no adoptions.
    EXPECT_EQ(outcome.tournaments_won, 0u);
    EXPECT_EQ(outcome.adoptions, 0u);
    EXPECT_TRUE(std::isfinite(outcome.final_validation_loss));
  }
}

TEST(DistributedLtfb, TrainingImprovesOverInitialModel) {
  const data::Dataset dataset = tiny_dataset(400, 67);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 68);
  auto config = base_config();
  config.ltfb.rounds = 6;
  config.ltfb.steps_per_round = 10;
  config.ltfb.pretrain_steps = 15;

  // Reference: untrained model's validation loss.
  gan::CycleGan untrained(config.model,
                          util::derive_seed(config.seed, "model", 0));
  const double initial_loss =
      evaluate_gan(untrained, dataset, splits.validation, config.batch_size)
          .total();

  std::mutex mutex;
  double best_final = 1e30;
  comm::World::run(2, [&](comm::Communicator& world) {
    const auto outcome =
        run_distributed_ltfb(world, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    best_final = std::min(best_final, outcome.final_validation_loss);
  });
  EXPECT_LT(best_final, initial_loss);
}

TEST(DistributedLtfb, InvalidConfigurationThrows) {
  const data::Dataset dataset = tiny_dataset(120, 69);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 70);
  auto config = base_config();
  config.ranks_per_trainer = 3;  // does not divide world size 4
  EXPECT_THROW(
      comm::World::run(4,
                       [&](comm::Communicator& world) {
                         (void)run_distributed_ltfb(world, dataset, splits,
                                                    config);
                       }),
      InvalidArgument);
}

TEST(DistributedLtfb, BatchMustDivideAcrossRanks) {
  const data::Dataset dataset = tiny_dataset(120, 71);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 72);
  auto config = base_config();
  config.ranks_per_trainer = 2;
  config.batch_size = 15;  // odd
  EXPECT_THROW(
      comm::World::run(2,
                       [&](comm::Communicator& world) {
                         (void)run_distributed_ltfb(world, dataset, splits,
                                                    config);
                       }),
      InvalidArgument);
}

}  // namespace
