// Tests for the CycleGAN surrogate: construction, training dynamics,
// generator/discriminator exchange semantics, and the data-parallel
// gradient-sync hook.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/data_reader.hpp"
#include "data/dataset.hpp"
#include "gan/cyclegan.hpp"
#include "perf/model_cost.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::gan;

CycleGanConfig tiny_config() {
  CycleGanConfig config;
  config.image_width = 48;  // e.g. 4x4 x 3 images
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

data::Batch batch_of(const data::Dataset& dataset, std::size_t n) {
  std::vector<std::size_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  return data::make_batch(dataset, positions);
}

TEST(CycleGan, ConstructionShapes) {
  const CycleGan model(tiny_config(), 1);
  EXPECT_GT(model.parameter_count(), 0u);
  EXPECT_GT(model.generator_parameter_count(), 0u);
  EXPECT_LT(model.generator_parameter_count(), model.parameter_count());
}

TEST(CycleGan, ParameterCountMatchesAnalyticModel) {
  // The perf cost model and the real network must agree exactly — this
  // pins the performance plane to the real implementation.
  const CycleGanConfig config = tiny_config();
  CycleGan model(config, 2);
  const perf::CycleGanCost cost = perf::analyze(config);
  EXPECT_DOUBLE_EQ(cost.total_params(),
                   static_cast<double>(model.parameter_count()));
  EXPECT_DOUBLE_EQ(cost.generator_params(),
                   static_cast<double>(model.generator_parameter_count()));
  EXPECT_DOUBLE_EQ(cost.encoder_params,
                   static_cast<double>(model.encoder().parameter_count()));
}

TEST(CycleGan, SameSeedSameWeights) {
  CycleGan a(tiny_config(), 7), b(tiny_config(), 7), c(tiny_config(), 8);
  EXPECT_EQ(a.generator_weights(), b.generator_weights());
  EXPECT_NE(a.generator_weights(), c.generator_weights());
}

TEST(CycleGan, InvalidConfigThrows) {
  CycleGanConfig config = tiny_config();
  config.scalar_width = 0;
  config.image_width = 0;
  EXPECT_THROW(CycleGan(config, 1), InvalidArgument);
}

TEST(CycleGan, PredictOutputsShape) {
  CycleGan model(tiny_config(), 3);
  const tensor::Tensor x(4, 5);
  const tensor::Tensor y = model.predict_outputs(x);
  EXPECT_EQ(y.rows(), 4u);
  EXPECT_EQ(y.cols(), tiny_config().output_width());
  EXPECT_TRUE(tensor::all_finite(y.data()));
}

TEST(CycleGan, CycleAndInversionShapes) {
  CycleGan model(tiny_config(), 4);
  const tensor::Tensor x(3, 5);
  EXPECT_EQ(model.cycle_inputs(x).cols(), 5u);
  const tensor::Tensor y(3, tiny_config().output_width());
  EXPECT_EQ(model.invert_outputs(y).cols(), 5u);
}

TEST(CycleGan, AutoencoderPretrainingReducesReconstruction) {
  const data::Dataset dataset = tiny_dataset(128, 10);
  CycleGan model(tiny_config(), 5);
  const data::Batch batch = batch_of(dataset, 32);
  const double first = model.pretrain_autoencoder_step(batch);
  double last = first;
  for (int i = 0; i < 150; ++i) {
    last = model.pretrain_autoencoder_step(batch);
  }
  EXPECT_LT(last, 0.6 * first);
}

TEST(CycleGan, TrainingImprovesValidationMetrics) {
  const data::Dataset dataset = tiny_dataset(256, 11);
  CycleGan model(tiny_config(), 6);
  data::MiniBatchReader reader(
      dataset, [] {
        std::vector<std::size_t> v(192);
        std::iota(v.begin(), v.end(), 0);
        return v;
      }(),
      32, 12);
  std::vector<std::size_t> val_positions(64);
  std::iota(val_positions.begin(), val_positions.end(), 192);
  const data::Batch val = data::make_batch(dataset, val_positions);

  const EvalMetrics before = model.evaluate(val);
  for (int i = 0; i < 60; ++i) {
    model.pretrain_autoencoder_step(reader.next());
  }
  for (int i = 0; i < 250; ++i) {
    model.train_step(reader.next());
  }
  const EvalMetrics after = model.evaluate(val);
  EXPECT_LT(after.forward_loss, before.forward_loss);
  EXPECT_LT(after.inverse_loss, before.inverse_loss);
  EXPECT_LT(after.total(), 0.8 * before.total());
}

TEST(CycleGan, StepMetricsAreFinite) {
  const data::Dataset dataset = tiny_dataset(64, 12);
  CycleGan model(tiny_config(), 7);
  const data::Batch batch = batch_of(dataset, 16);
  for (int i = 0; i < 20; ++i) {
    const StepMetrics m = model.train_step(batch);
    EXPECT_TRUE(std::isfinite(m.reconstruction_loss));
    EXPECT_TRUE(std::isfinite(m.fidelity_loss));
    EXPECT_TRUE(std::isfinite(m.adversarial_loss));
    EXPECT_TRUE(std::isfinite(m.cycle_loss));
    EXPECT_TRUE(std::isfinite(m.discriminator_loss));
    EXPECT_GE(m.discriminator_loss, 0.0);
  }
  for (nn::Model* component : model.components()) {
    EXPECT_TRUE(tensor::all_finite(component->flatten_weights()));
  }
}

TEST(CycleGan, GeneratorExchangeRoundTrip) {
  CycleGan a(tiny_config(), 8), b(tiny_config(), 9);
  const std::vector<float> wa = a.generator_weights();
  b.load_generator_weights(wa);
  EXPECT_EQ(b.generator_weights(), wa);
  // After the exchange both generators predict identically.
  const tensor::Tensor x(2, 5);
  const tensor::Tensor ya = a.predict_outputs(x);
  const tensor::Tensor yb = b.predict_outputs(x);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST(CycleGan, GeneratorExchangeLeavesDiscriminatorLocal) {
  // The paper's LTFB-for-GANs rule: critics never travel.
  CycleGan a(tiny_config(), 10), b(tiny_config(), 11);
  const std::vector<float> disc_before = b.discriminator_weights();
  b.load_generator_weights(a.generator_weights());
  EXPECT_EQ(b.discriminator_weights(), disc_before);
}

TEST(CycleGan, WrongSizeExchangeThrows) {
  CycleGan model(tiny_config(), 12);
  std::vector<float> wrong(model.generator_parameter_count() + 1);
  EXPECT_THROW(model.load_generator_weights(wrong), InvalidArgument);
}

TEST(CycleGan, DiscriminatorLearnsToSeparate) {
  const data::Dataset dataset = tiny_dataset(128, 13);
  CycleGan model(tiny_config(), 14);
  const data::Batch batch = batch_of(dataset, 64);
  for (int i = 0; i < 40; ++i) {
    model.pretrain_autoencoder_step(batch);
  }
  for (int i = 0; i < 100; ++i) {
    model.train_step(batch);
  }
  const EvalMetrics m = model.evaluate(batch);
  // The critic should do at least somewhat better than chance while the
  // generator is still imperfect.
  EXPECT_GT(m.discriminator_accuracy, 0.5);
}

TEST(CycleGan, GradientSyncHookFiresPerPhase) {
  const data::Dataset dataset = tiny_dataset(32, 15);
  CycleGan model(tiny_config(), 16);
  int calls = 0;
  std::vector<std::size_t> sizes;
  model.set_gradient_sync([&](const std::vector<nn::Model*>& models) {
    ++calls;
    sizes.push_back(models.size());
  });
  model.train_step(batch_of(dataset, 8));
  // Three sync points: autoencoder (E+Dec), critic (D), generator (F+G).
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 1u);
  EXPECT_EQ(sizes[2], 2u);
}

TEST(CycleGan, EvaluateDoesNotMutateWeights) {
  const data::Dataset dataset = tiny_dataset(32, 17);
  CycleGan model(tiny_config(), 18);
  const std::vector<float> before = model.generator_weights();
  const std::vector<float> disc_before = model.discriminator_weights();
  (void)model.evaluate(batch_of(dataset, 8));
  EXPECT_EQ(model.generator_weights(), before);
  EXPECT_EQ(model.discriminator_weights(), disc_before);
}

}  // namespace
