// Flight recorder, hang watchdog, and postmortem pipeline (DESIGN.md §16).
//
// In-process coverage: event rings and span stacks feeding the dump, the
// pending-op registry both backends report through Backend::pending_ops,
// watchdog stall detection (and its false-positive guard: compute progress
// ticking heartbeats must keep a short stall window quiet), and the
// postmortem a rank unwinding out of World::run_ranks leaves behind.
//
// Cross-process coverage: World::spawn_processes with a seeded kill must
// leave the victim's postmortem_rank<N>.json plus the supervisor's merged
// postmortem_run.json, with rank attribution surviving the fork boundary.
// Structural validation of those artifacts lives in tools/ltfb_postmortem.py
// (fixture-chained ctest below this suite in CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "comm/communicator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "util/compute_pool.hpp"
#include "util/error.hpp"

namespace {

using namespace ltfb;
namespace flight = telemetry::flight;

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// Fresh artifact directory + quiescent recorder per test. The recorder's
/// state is static by design (signal safety), so tests reset it instead of
/// constructing it.
class PostmortemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ltfb_postmortem_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    std::filesystem::remove_all(dir_);
    flight::stop_watchdog();
    flight::reset_for_tests();
    flight::set_postmortem_dir(dir_.string());
    flight::set_enabled(true);
  }

  void TearDown() override {
    flight::stop_watchdog();
    flight::set_enabled(false);
    flight::reset_for_tests();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

// ---- rings, spans, and the dump shape --------------------------------------

TEST_F(PostmortemTest, DumpCapturesEventsSpansAndRank) {
  const telemetry::RankBinding bind(3);
  const telemetry::Span outer("ltfb/round");
  const telemetry::Span inner("ltfb/train_phase");
  flight::record(flight::EventKind::CommOp, "comm/send", /*a=*/17, /*b=*/2);
  flight::heartbeat();

  ASSERT_TRUE(flight::write_postmortem("error", "unit test dump", /*rank=*/3));
  const std::string body = slurp(flight::postmortem_path(3));
  EXPECT_NE(body.find("\"schema\": \"ltfb-postmortem-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"kind\": \"error\""), std::string::npos);
  EXPECT_NE(body.find("\"rank\": 3"), std::string::npos);
  // The live span stack (this thread never unwound) and the comm event.
  EXPECT_NE(body.find("ltfb/round"), std::string::npos);
  EXPECT_NE(body.find("ltfb/train_phase"), std::string::npos);
  EXPECT_NE(body.find("comm/send"), std::string::npos);
  EXPECT_NE(body.find("\"heartbeats\": [{\"rank\": 3"), std::string::npos);
}

TEST_F(PostmortemTest, DisabledRecorderIsInert) {
  flight::set_enabled(false);
  flight::record(flight::EventKind::CommOp, "comm/send", 1, 2);
  flight::heartbeat();
  const flight::PendingOp op("comm/recv_wait", /*tag=*/9, /*peer=*/1);
  EXPECT_TRUE(flight::pending_ops().empty());
  EXPECT_EQ(flight::heartbeat_count(telemetry::bound_rank()), 0u);
}

TEST_F(PostmortemTest, PendingOpRegistryTracksLifetime) {
  const telemetry::RankBinding bind(1);
  {
    const flight::PendingOp op("comm/recv_wait", /*tag=*/42, /*peer=*/0);
    const auto ops = flight::pending_ops();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_STREQ(ops[0].op, "comm/recv_wait");
    EXPECT_EQ(ops[0].tag, 42);
    EXPECT_EQ(ops[0].peer, 0);
    EXPECT_EQ(ops[0].rank, 1);
  }
  EXPECT_TRUE(flight::pending_ops().empty());
}

TEST_F(PostmortemTest, BackendExposesRegistry) {
  const auto backend = comm::make_backend(comm::BackendKind::InProc, 2);
  EXPECT_TRUE(backend->pending_ops().empty());
  const flight::PendingOp op("comm/collective_recv", /*tag=*/7, /*peer=*/1);
  const auto ops = backend->pending_ops();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].tag, 7);
}

TEST_F(PostmortemTest, ArgumentValidation) {
  EXPECT_THROW(flight::start_watchdog(0.0), InvalidArgument);
  EXPECT_THROW(flight::start_watchdog(-1.0), InvalidArgument);
  EXPECT_THROW(flight::set_process_rank(-2), InvalidArgument);
  EXPECT_THROW(flight::set_postmortem_dir(""), InvalidArgument);
  EXPECT_THROW(flight::set_postmortem_dir(std::string(1000, 'x')),
               InvalidArgument);
}

// ---- watchdog --------------------------------------------------------------

TEST_F(PostmortemTest, WatchdogDumpsStalledPendingOp) {
  const telemetry::RankBinding bind(0);
  ASSERT_TRUE(flight::start_watchdog(0.05));
  EXPECT_FALSE(flight::start_watchdog(0.05));  // already running
  const flight::PendingOp op("comm/recv_wait", /*tag=*/13, /*peer=*/1);
  // No heartbeat progress: the op must be declared a stall within ~2x the
  // window. Poll generously for CI machines under load.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!std::filesystem::exists(flight::postmortem_path(0)) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(std::filesystem::exists(flight::postmortem_path(0)));
  const std::string body = slurp(flight::postmortem_path(0));
  EXPECT_NE(body.find("\"kind\": \"stall\""), std::string::npos);
  EXPECT_NE(body.find("watchdog/stall_detected"), std::string::npos);
  EXPECT_NE(body.find("\"blame\": {\"op\": \"comm/recv_wait\", \"tag\": 13"),
            std::string::npos);
}

TEST_F(PostmortemTest, WatchdogIgnoresProgressingRank) {
  // The false-positive guard: a long GEMM-style compute sweep under a
  // window far shorter than the sweep must NOT produce a stall dump,
  // because ComputePool::run_tasks (like DataStore preload/fetch) ticks
  // the owning rank's heartbeat as it makes progress.
  const telemetry::RankBinding bind(0);
  ASSERT_TRUE(flight::start_watchdog(0.05));
  const flight::PendingOp op("comm/recv_wait", /*tag=*/5, /*peer=*/1);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  std::array<double, 8> sinks{};
  while (std::chrono::steady_clock::now() < until) {
    util::ComputePool::instance().run_tasks(sinks.size(),
                                            [&sinks](std::size_t t) {
      double acc = 0.0;
      for (std::size_t i = 0; i < 1000; ++i) {
        acc += static_cast<double>(i ^ t);
      }
      sinks[t] += acc;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(sinks[0], 0.0);
  EXPECT_GT(flight::heartbeat_count(0), 0u);
  EXPECT_FALSE(std::filesystem::exists(flight::postmortem_path(0)))
      << "watchdog dumped a stall despite heartbeat progress";
}

TEST_F(PostmortemTest, WatchdogRearmsAfterProgressThenStall) {
  const telemetry::RankBinding bind(0);
  ASSERT_TRUE(flight::start_watchdog(0.05));
  const flight::PendingOp op("comm/recv_wait", /*tag=*/21, /*peer=*/1);
  // Progress for a while (no dump), then stop: the dump must still come.
  for (int i = 0; i < 30; ++i) {
    flight::heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(std::filesystem::exists(flight::postmortem_path(0)));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!std::filesystem::exists(flight::postmortem_path(0)) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(std::filesystem::exists(flight::postmortem_path(0)));
}

// ---- in-process unwind (the chaos-suite path) ------------------------------

TEST_F(PostmortemTest, RunRanksUnwindLeavesPostmortem) {
  comm::World world(2);
  comm::FaultSchedule schedule;
  schedule.kill(/*rank=*/1, /*at_op=*/2);
  world.set_fault_schedule(std::move(schedule));
  int failures = 0;
  for (const std::exception_ptr& error :
       world.run_ranks([](comm::Communicator& comm) {
         const int peer = 1 - comm.rank();
         for (int i = 0; i < 4; ++i) {
           try {
             (void)comm.sendrecv(peer, i, comm::Buffer{0x1},
                                 std::chrono::milliseconds(2'000));
           } catch (const comm::FaultInjected&) {
             throw;
           } catch (const Error&) {
             return;  // peer died; this rank survives
           }
         }
       })) {
    if (error) ++failures;
  }
  ASSERT_EQ(failures, 1);
  ASSERT_TRUE(std::filesystem::exists(flight::postmortem_path(1)));
  const std::string body = slurp(flight::postmortem_path(1));
  EXPECT_NE(body.find("\"kind\": \"fault_injected\""), std::string::npos);
  EXPECT_NE(body.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(body.find("fault/kill_injected"), std::string::npos);
}

// ---- cross-process supervision ---------------------------------------------

TEST_F(PostmortemTest, SpawnKilledRankProducesMergedReport) {
  // Children read the flight configuration from the environment after
  // fork (spawn_socket_mesh arms the recorder before the backend is
  // constructed); the parent merges after reaping.
  ASSERT_EQ(::setenv("LTFB_FLIGHT_RECORDER", "1", 1), 0);
  ASSERT_EQ(::setenv("LTFB_POSTMORTEM_DIR", dir_.string().c_str(), 1), 0);
  ASSERT_EQ(::setenv("LTFB_FAULT_SCHEDULE", "kill:1@3", 1), 0);
  const auto statuses =
      comm::World::spawn_processes(2, [](comm::Communicator& comm) {
        const int peer = 1 - comm.rank();
        for (int i = 0; i < 6; ++i) {
          (void)comm.sendrecv(peer, i, comm::Buffer{0x2},
                              std::chrono::milliseconds(10'000));
        }
      });
  ::unsetenv("LTFB_FAULT_SCHEDULE");
  ::unsetenv("LTFB_FLIGHT_RECORDER");
  ::unsetenv("LTFB_POSTMORTEM_DIR");

  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[1].code, comm::World::kExitFaultInjected);
  EXPECT_FALSE(statuses[0].pre_rendezvous);
  EXPECT_FALSE(statuses[1].pre_rendezvous);

  ASSERT_TRUE(std::filesystem::exists(dir_ / "postmortem_rank1.json"));
  const std::string rank1 = slurp(dir_ / "postmortem_rank1.json");
  EXPECT_NE(rank1.find("\"kind\": \"fault_injected\""), std::string::npos);
  EXPECT_NE(rank1.find("\"rank\": 1"), std::string::npos);

  ASSERT_TRUE(std::filesystem::exists(dir_ / "postmortem_run.json"));
  const std::string run = slurp(dir_ / "postmortem_run.json");
  EXPECT_NE(run.find("\"schema\": \"ltfb-postmortem-run-v1\""),
            std::string::npos);
  EXPECT_NE(run.find("\"world_size\": 2"), std::string::npos);
  // The dead rank's dump is embedded verbatim in its row.
  EXPECT_NE(run.find("\"exit_code\": 42"), std::string::npos);
  EXPECT_NE(run.find("ltfb-postmortem-v1"), std::string::npos);
}

}  // namespace
