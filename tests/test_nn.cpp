// Unit tests for src/nn: layer semantics, finite-difference gradient checks
// across the whole DAG, optimizers, losses, and data-parallel hooks.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>

#include "comm/communicator.hpp"
#include "nn/checkpoint.hpp"
#include "nn/initializer.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/parallel.hpp"
#include "tensor/half.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::nn;
using ltfb::tensor::Tensor;

Tensor random_batch(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(rows, cols);
  for (auto& v : t.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

// ---- initializers ------------------------------------------------------------

TEST(Initializer, GlorotRange) {
  util::Rng rng(1);
  std::vector<float> w(1000);
  glorot_uniform(rng, 10, 20, w);
  const double limit = std::sqrt(6.0 / 30.0);
  for (const float v : w) {
    EXPECT_LE(std::abs(v), limit);
  }
}

TEST(Initializer, HeNormalStddev) {
  util::Rng rng(2);
  std::vector<float> w(20000);
  he_normal(rng, 50, w);
  util::RunningStats stats;
  for (const float v : w) stats.add(v);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(2.0 / 50.0), 0.01);
}

TEST(Initializer, Constant) {
  std::vector<float> w(5);
  constant_init(2.5f, w);
  for (const float v : w) EXPECT_EQ(v, 2.5f);
}

// ---- optimizers ---------------------------------------------------------------

TEST(Optimizer, SgdStep) {
  Sgd sgd(0.1f);
  std::vector<float> w{1.0f, 2.0f};
  const std::vector<float> g{1.0f, -1.0f};
  sgd.step(w, g);
  EXPECT_FLOAT_EQ(w[0], 0.9f);
  EXPECT_FLOAT_EQ(w[1], 2.1f);
}

TEST(Optimizer, MomentumAccumulates) {
  Momentum momentum(0.1f, 0.9f);
  std::vector<float> w{0.0f};
  const std::vector<float> g{1.0f};
  momentum.step(w, g);  // v = -0.1, w = -0.1
  momentum.step(w, g);  // v = -0.19, w = -0.29
  EXPECT_NEAR(w[0], -0.29f, 1e-6f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // minimize f(w) = (w - 3)^2
  Adam adam(0.1f);
  std::vector<float> w{0.0f};
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> g{2.0f * (w[0] - 3.0f)};
    adam.step(w, g);
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Optimizer, AdamFirstStepIsLearningRateSized) {
  Adam adam(0.01f);
  std::vector<float> w{1.0f};
  adam.step(w, std::vector<float>{123.0f});
  // Bias-corrected Adam moves ~lr on the first step regardless of scale.
  EXPECT_NEAR(w[0], 1.0f - 0.01f, 1e-4f);
}

TEST(Optimizer, CloneFreshDropsState) {
  Momentum momentum(0.1f, 0.9f);
  std::vector<float> w{0.0f};
  momentum.step(w, std::vector<float>{1.0f});
  auto fresh = momentum.clone_fresh();
  std::vector<float> w2{0.0f};
  fresh->step(w2, std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(w2[0], -0.1f);  // no inherited velocity
}

TEST(Optimizer, LearningRateMutable) {
  Sgd sgd(0.1f);
  sgd.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.5f);
}

// ---- losses --------------------------------------------------------------------

TEST(Loss, MaeValueAndGrad) {
  Tensor pred({1, 2}, {1.0f, -2.0f});
  Tensor target({1, 2}, {0.0f, 0.0f});
  Tensor grad;
  EXPECT_DOUBLE_EQ(mae_loss(pred, target, &grad), 1.5);
  EXPECT_FLOAT_EQ(grad[0], 0.5f);
  EXPECT_FLOAT_EQ(grad[1], -0.5f);
}

TEST(Loss, MseValueAndGrad) {
  Tensor pred({1, 2}, {1.0f, -2.0f});
  Tensor target({1, 2}, {0.0f, 0.0f});
  Tensor grad;
  EXPECT_DOUBLE_EQ(mse_loss(pred, target, &grad), 2.5);
  EXPECT_FLOAT_EQ(grad[0], 1.0f);
  EXPECT_FLOAT_EQ(grad[1], -2.0f);
}

TEST(Loss, BceAtZeroLogitIsLog2) {
  Tensor logits({1, 1}, {0.0f});
  EXPECT_NEAR(bce_with_logits(logits, 1.0f, nullptr), std::log(2.0), 1e-9);
  EXPECT_NEAR(bce_with_logits(logits, 0.0f, nullptr), std::log(2.0), 1e-9);
}

TEST(Loss, BceGradSign) {
  Tensor logits({1, 1}, {2.0f});
  Tensor grad;
  bce_with_logits(logits, 1.0f, &grad);
  EXPECT_LT(grad[0], 0.0f);  // push logit up toward "real"
  bce_with_logits(logits, 0.0f, &grad);
  EXPECT_GT(grad[0], 0.0f);
}

TEST(Loss, BceStableAtExtremeLogits) {
  Tensor logits({1, 2}, {60.0f, -60.0f});
  Tensor labels({1, 2}, {1.0f, 0.0f});
  const double loss = bce_with_logits(logits, labels, nullptr);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(Loss, MseFiniteDifferenceGradients) {
  const Tensor target = random_batch(3, 4, 10);
  Tensor pred = random_batch(3, 4, 11);
  const float eps = 1e-3f;
  Tensor grad;
  mse_loss(pred, target, &grad);
  for (std::size_t i = 0; i < pred.size(); i += 3) {
    const float saved = pred[i];
    pred[i] = saved + eps;
    const double up = mse_loss(pred, target, nullptr);
    pred[i] = saved - eps;
    const double down = mse_loss(pred, target, nullptr);
    pred[i] = saved;
    EXPECT_NEAR(grad[i], (up - down) / (2.0 * eps), 2e-3);
  }
}

TEST(Loss, BceFiniteDifferenceGradients) {
  Tensor logits = random_batch(4, 2, 12);
  const float eps = 1e-3f;
  Tensor grad;
  bce_with_logits(logits, 1.0f, &grad);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double up = bce_with_logits(logits, 1.0f, nullptr);
    logits[i] = saved - eps;
    const double down = bce_with_logits(logits, 1.0f, nullptr);
    logits[i] = saved;
    EXPECT_NEAR(grad[i], (up - down) / (2.0 * eps), 2e-3);
  }
}

// ---- layers: forward semantics ---------------------------------------------------

TEST(Layers, FullyConnectedComputesAffine) {
  Model model("m", 1);
  const LayerId in = model.add_input(2);
  const LayerId fc = model.add_linear(in, 3);
  // Overwrite weights for a deterministic check.
  auto weights = model.weights();
  ASSERT_EQ(weights.size(), 2u);
  weights[0]->values() = Tensor({2, 3}, {1, 0, 2, 0, 1, 3});
  weights[1]->values() = Tensor({3}, {1, 1, 1});
  const Tensor x({1, 2}, {2.0f, 5.0f});
  model.forward({&x});
  const Tensor& y = model.output(fc);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.0f);   // 2*1 + 5*0 + 1
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.0f);   // 5 + 1
  EXPECT_FLOAT_EQ(y.at(0, 2), 20.0f);  // 4 + 15 + 1
}

TEST(Layers, ActivationsElementwise) {
  Model model("m", 2);
  const LayerId in = model.add_input(4);
  const LayerId relu =
      model.add(std::make_unique<Activation>(ActivationKind::Relu), {in});
  const LayerId tanh_id =
      model.add(std::make_unique<Activation>(ActivationKind::Tanh), {in});
  const LayerId sig =
      model.add(std::make_unique<Activation>(ActivationKind::Sigmoid), {in});
  const LayerId leaky = model.add(
      std::make_unique<Activation>(ActivationKind::LeakyRelu, 0.1f), {in});
  const Tensor x({1, 4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  model.forward({&x});
  EXPECT_FLOAT_EQ(model.output(relu)[0], 0.0f);
  EXPECT_FLOAT_EQ(model.output(relu)[3], 2.0f);
  EXPECT_NEAR(model.output(tanh_id)[3], std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(model.output(sig)[2], 1.0f / (1.0f + std::exp(-0.5f)), 1e-6);
  EXPECT_FLOAT_EQ(model.output(leaky)[0], -0.2f);
}

TEST(Layers, ConcatAndSlice) {
  Model model("m", 3);
  const LayerId a = model.add_input(2);
  const LayerId b = model.add_input(3);
  const LayerId cat = model.add(std::make_unique<Concat>(), {a, b});
  const LayerId sl = model.add(std::make_unique<Slice>(1, 4), {cat});
  const Tensor xa({2, 2}, {1, 2, 3, 4});
  const Tensor xb({2, 3}, {5, 6, 7, 8, 9, 10});
  model.forward({&xa, &xb});
  const Tensor& c = model.output(cat);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 8.0f);
  const Tensor& s = model.output(sl);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(0, 2), 6.0f);
}

TEST(Layers, SliceOutOfRangeThrows) {
  Model model("m", 4);
  const LayerId in = model.add_input(3);
  EXPECT_THROW(model.add(std::make_unique<Slice>(1, 5), {in}),
               InvalidArgument);
}

TEST(Layers, DropoutTrainVsEval) {
  Model model("m", 5);
  const LayerId in = model.add_input(1000);
  const LayerId dropped = model.add(std::make_unique<Dropout>(0.5f), {in});
  const Tensor x = Tensor::full({1, 1000}, 1.0f);
  model.forward({&x}, /*training=*/true);
  std::size_t zeros = 0;
  double mean = 0.0;
  for (const float v : model.output(dropped).data()) {
    if (v == 0.0f) ++zeros;
    mean += v;
  }
  mean /= 1000.0;
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.08);
  EXPECT_NEAR(mean, 1.0, 0.15);  // inverted dropout preserves expectation

  model.forward({&x}, /*training=*/false);
  for (const float v : model.output(dropped).data()) {
    EXPECT_FLOAT_EQ(v, 1.0f);
  }
}

TEST(Layers, InvalidDropoutProbabilityThrows) {
  Model model("m", 55);
  const LayerId in = model.add_input(4);
  EXPECT_THROW(model.add(std::make_unique<Dropout>(1.0f), {in}),
               InvalidArgument);
}

// ---- model mechanics ----------------------------------------------------------

TEST(Model, InputWidthMismatchThrows) {
  Model model("m", 6);
  model.add_input(3);
  const Tensor x(1, 4);
  EXPECT_THROW(model.forward({&x}), InvalidArgument);
}

TEST(Model, InputCountMismatchThrows) {
  Model model("m", 7);
  model.add_input(3);
  const Tensor x(1, 3);
  EXPECT_THROW(model.forward({&x, &x}), InvalidArgument);
}

TEST(Model, SameSeedSameWeights) {
  auto build = [](std::uint64_t seed) {
    Model model("m", seed);
    const LayerId in = model.add_input(4);
    model.add_dense(in, 8, ActivationKind::Relu);
    return model.flatten_weights();
  };
  EXPECT_EQ(build(42), build(42));
  EXPECT_NE(build(42), build(43));
}

TEST(Model, FlattenLoadRoundTrip) {
  Model model("m", 9);
  const LayerId in = model.add_input(3);
  model.add_dense(in, 5, ActivationKind::Tanh);
  auto flat = model.flatten_weights();
  EXPECT_EQ(flat.size(), model.parameter_count());
  for (auto& v : flat) v += 1.0f;
  model.load_flat_weights(flat);
  EXPECT_EQ(model.flatten_weights(), flat);
}

TEST(Model, LoadWrongSizeThrows) {
  Model model("m", 10);
  const LayerId in = model.add_input(3);
  model.add_linear(in, 2);
  std::vector<float> wrong(model.parameter_count() + 1);
  EXPECT_THROW(model.load_flat_weights(wrong), InvalidArgument);
}

TEST(Model, ParameterCountMatchesStructure) {
  Model model("m", 16);
  const LayerId in = model.add_input(3);
  model.add_dense(in, 4, ActivationKind::Relu);  // 3*4+4 = 16
  EXPECT_EQ(model.parameter_count(), 16u);
}

// ---- whole-model finite-difference gradient check --------------------------------

TEST(Model, FiniteDifferenceGradientCheck) {
  // Diamond DAG: input -> (dense tanh | slice) -> concat -> linear.
  Model model("m", 11);
  const LayerId in = model.add_input(3);
  const LayerId left = model.add_dense(in, 4, ActivationKind::Tanh);
  const LayerId right = model.add(std::make_unique<Slice>(0, 2), {in});
  const LayerId cat = model.add(std::make_unique<Concat>(), {left, right});
  const LayerId out = model.add_linear(cat, 2);

  const Tensor x = random_batch(5, 3, 20);
  const Tensor target = random_batch(5, 2, 21);

  auto loss_at = [&]() {
    model.forward({&x}, /*training=*/false);
    return mse_loss(model.output(out), target, nullptr);
  };

  model.forward({&x}, false);
  Tensor grad;
  mse_loss(model.output(out), target, &grad);
  model.zero_gradients();
  model.add_output_gradient(out, grad);
  model.backward();

  const float eps = 1e-3f;
  for (Weights* w : model.weights()) {
    auto values = w->values().data();
    const auto analytic = w->gradient().data();
    for (std::size_t i = 0; i < values.size(); i += 5) {
      const float saved = values[i];
      values[i] = saved + eps;
      const double up = loss_at();
      values[i] = saved - eps;
      const double down = loss_at();
      values[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric, 5e-3)
          << w->name() << " element " << i;
    }
  }
}

TEST(Model, LeakyReluGradientCheck) {
  Model model("m", 17);
  const LayerId in = model.add_input(3);
  const LayerId h = model.add_dense(in, 6, ActivationKind::LeakyRelu);
  const LayerId out = model.add_linear(h, 2);
  const Tensor x = random_batch(4, 3, 22);
  const Tensor target = random_batch(4, 2, 23);

  model.forward({&x}, false);
  Tensor grad;
  mse_loss(model.output(out), target, &grad);
  model.zero_gradients();
  model.add_output_gradient(out, grad);
  model.backward();

  const float eps = 1e-3f;
  Weights* kernel = model.weights()[0];
  auto values = kernel->values().data();
  const auto analytic = kernel->gradient().data();
  for (std::size_t i = 0; i < values.size(); i += 2) {
    const float saved = values[i];
    values[i] = saved + eps;
    model.forward({&x}, false);
    const double up = mse_loss(model.output(out), target, nullptr);
    values[i] = saved - eps;
    model.forward({&x}, false);
    const double down = mse_loss(model.output(out), target, nullptr);
    values[i] = saved;
    EXPECT_NEAR(analytic[i], (up - down) / (2.0 * eps), 5e-3);
  }
}

TEST(Model, InputGradientFlowsToSource) {
  Model model("m", 12);
  const LayerId in = model.add_input(2);
  const LayerId out = model.add_linear(in, 1);
  auto weights = model.weights();
  weights[0]->values() = Tensor({2, 1}, {3.0f, -2.0f});
  weights[1]->values() = Tensor(tensor::Shape{1}, {0.0f});
  const Tensor x({1, 2}, {1.0f, 1.0f});
  model.forward({&x});
  Tensor grad({1, 1}, {1.0f});
  model.zero_gradients();
  model.add_output_gradient(out, grad);
  model.backward();
  const Tensor& dx = model.input_gradient(0);
  EXPECT_FLOAT_EQ(dx.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), -2.0f);
}

TEST(Model, InputGradientBeforeBackwardThrows) {
  Model model("m", 13);
  const LayerId in = model.add_input(2);
  model.add_linear(in, 1);
  const Tensor x(1, 2);
  model.forward({&x});
  model.zero_gradients();
  EXPECT_THROW(model.input_gradient(0), InvalidArgument);
}

TEST(Model, FanOutGradientsAccumulate) {
  // y = w*x used twice: dL/dw = 2x when both uses receive gradient 1.
  Model model("m", 14);
  const LayerId in = model.add_input(1);
  const LayerId mid =
      model.add(std::make_unique<FullyConnected>(1, /*has_bias=*/false), {in});
  auto weights = model.weights();
  weights[0]->values() = Tensor({1, 1}, {1.0f});
  const Tensor x({1, 1}, {3.0f});
  model.forward({&x});
  const Tensor ones({1, 1}, {1.0f});
  model.zero_gradients();
  model.add_output_gradient(mid, ones);
  model.add_output_gradient(mid, ones);
  model.backward();
  EXPECT_FLOAT_EQ(weights[0]->gradient()[0], 6.0f);
}

TEST(Model, TrainingReducesLossOnRegression) {
  Model model("m", 15);
  const LayerId in = model.add_input(1);
  const LayerId hidden = model.add_dense(in, 16, ActivationKind::Tanh);
  const LayerId out = model.add_linear(hidden, 1);
  model.set_optimizer(make_adam_factory(0.01f));

  util::Rng rng(77);
  Tensor x(64, 1), y(64, 1), grad;
  for (std::size_t i = 0; i < 64; ++i) {
    const double xv = rng.uniform(-1.0, 1.0);
    x[i] = static_cast<float>(xv);
    y[i] = static_cast<float>(std::sin(3.0 * xv));
  }

  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    model.forward({&x});
    const double loss = mse_loss(model.output(out), y, &grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model.zero_gradients();
    model.add_output_gradient(out, grad);
    model.backward();
    model.apply_optimizer_step();
  }
  EXPECT_LT(last_loss, 0.1 * first_loss);
}

// ---- data-parallel hooks -----------------------------------------------------------

TEST(Parallel, AllreduceGradientsAverages) {
  comm::World::run(4, [](comm::Communicator& comm) {
    Model model("m", 100);  // same seed everywhere -> same structure
    const LayerId in = model.add_input(2);
    model.add_linear(in, 2);
    std::vector<float> grads(model.parameter_count(),
                             static_cast<float>(comm.rank() + 1));
    model.load_flat_gradients(grads);
    allreduce_gradients(model, comm);
    for (const float g : model.flatten_gradients()) {
      EXPECT_FLOAT_EQ(g, 2.5f);  // mean of 1..4
    }
  });
}

TEST(Parallel, BroadcastWeightsSynchronizes) {
  comm::World::run(3, [](comm::Communicator& comm) {
    Model model("m", 200 + static_cast<std::uint64_t>(comm.rank()));
    const LayerId in = model.add_input(3);
    model.add_dense(in, 4, ActivationKind::Relu);
    EXPECT_FALSE(weights_in_sync(model, comm));
    broadcast_weights(model, comm, /*root=*/0);
    EXPECT_TRUE(weights_in_sync(model, comm));
  });
}

TEST(Parallel, DataParallelMatchesSerialGradients) {
  // 2 ranks each compute gradients on half the batch; after averaging they
  // must equal the serial full-batch gradient (MSE is a mean).
  const Tensor x = random_batch(8, 2, 30);
  const Tensor y = random_batch(8, 1, 31);

  auto build = [] {
    Model model("m", 300);
    const LayerId in = model.add_input(2);
    model.add_linear(in, 1);
    return model;
  };

  Model serial = build();
  const LayerId serial_out = 1;
  serial.forward({&x});
  Tensor grad;
  mse_loss(serial.output(serial_out), y, &grad);
  serial.zero_gradients();
  serial.add_output_gradient(serial_out, grad);
  serial.backward();
  const std::vector<float> reference = serial.flatten_gradients();

  std::vector<float> parallel_result;
  std::mutex mutex;
  comm::World::run(2, [&](comm::Communicator& comm) {
    Model model = build();
    Tensor xs(4, 2), ys(4, 1);
    const std::size_t offset = static_cast<std::size_t>(comm.rank()) * 4;
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 2; ++c) xs.at(r, c) = x.at(offset + r, c);
      ys.at(r, 0) = y.at(offset + r, 0);
    }
    model.forward({&xs});
    Tensor local_grad;
    mse_loss(model.output(1), ys, &local_grad);
    model.zero_gradients();
    model.add_output_gradient(1, local_grad);
    model.backward();
    allreduce_gradients(model, comm);
    if (comm.rank() == 0) {
      const std::scoped_lock lock(mutex);
      parallel_result = model.flatten_gradients();
    }
  });

  ASSERT_EQ(parallel_result.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(parallel_result[i], reference[i], 1e-5f);
  }
}

// ---- bucketed overlapped all-reduce ------------------------------------------------

namespace bucketer_tests {

Model build_layered_model(std::uint64_t seed) {
  Model model("m", seed);
  const LayerId in = model.add_input(6);
  const LayerId h1 = model.add_dense(in, 16, ActivationKind::Relu);
  const LayerId h2 = model.add_dense(h1, 12, ActivationKind::Tanh);
  model.add_linear(h2, 4);
  return model;
}

// Feeds every weights object of `model` to the bucketer in reverse-layer
// order — exactly what Model::backward(hook) does — then finishes.
void bucket_all(GradientBucketer& bucketer, Model& model) {
  const auto weights = model.weights();
  for (std::size_t i = weights.size(); i-- > 0;) {
    bucketer.on_layer_backward(*weights[i]);
  }
  bucketer.finish({&model});
}

}  // namespace bucketer_tests

TEST(Parallel, BucketerAveragesAcrossRanks) {
  using namespace bucketer_tests;
  comm::World::run(4, [](comm::Communicator& comm) {
    Model model = build_layered_model(100);
    std::vector<float> grads(model.parameter_count(),
                             static_cast<float>(comm.rank() + 1));
    model.load_flat_gradients(grads);
    // Tiny buckets: the model's several weights tensors spread over
    // multiple concurrent ring exchanges.
    GradientBucketer bucketer(comm, /*bucket_bytes=*/256);
    bucket_all(bucketer, model);
    EXPECT_GT(bucketer.buckets_completed(), 1u);
    for (const float g : model.flatten_gradients()) {
      EXPECT_FLOAT_EQ(g, 2.5f);  // mean of 1..4
    }
  });
}

TEST(Parallel, BucketerMatchesBlockingAllreduceAndSyncsReplicas) {
  // Against the blocking flatten-everything path the bucketed result agrees
  // only NUMERICALLY: an element's ring summation order depends on its
  // chunk index, which differs between one flat buffer and per-bucket
  // chunking, so last bits legitimately differ. What must hold exactly is
  // cross-rank agreement — the all-gather hands every rank the same reduced
  // bytes, so replicas stay BIT-identical to each other.
  using namespace bucketer_tests;
  comm::World::run(3, [](comm::Communicator& comm) {
    Model reference = build_layered_model(100);
    Model bucketed = build_layered_model(100);
    util::Rng rng(500 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grads(reference.parameter_count());
    for (auto& g : grads) g = static_cast<float>(rng.uniform(-1.0, 1.0));
    reference.load_flat_gradients(grads);
    bucketed.load_flat_gradients(grads);

    allreduce_gradients(reference, comm);
    GradientBucketer bucketer(comm, /*bucket_bytes=*/512);
    bucket_all(bucketer, bucketed);

    const auto expect = reference.flatten_gradients();
    const auto got = bucketed.flatten_gradients();
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(expect[i], got[i], 1e-5f) << "element " << i;
    }

    // Bit-exact replica agreement: every rank's averaged gradients must be
    // byte-identical, or data-parallel replicas drift apart.
    const std::vector<float> everyone = comm.allgather(got);
    for (std::size_t r = 0; r < static_cast<std::size_t>(comm.size()); ++r) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(everyone[r * got.size() + i], got[i])
            << "rank " << r << " element " << i;
      }
    }
  });
}

TEST(Parallel, BucketerViaBackwardHookMatchesAllreduce) {
  // End-to-end through the real seam: Model::backward(hook) streams
  // gradients into the bucketer during backprop.
  using namespace bucketer_tests;
  const Tensor x = random_batch(8, 6, 40);
  const Tensor y = random_batch(8, 4, 41);
  comm::World::run(2, [&](comm::Communicator& comm) {
    Model reference = build_layered_model(100);
    Model hooked = build_layered_model(100);
    const LayerId out = 3;  // input, fused fc x2, linear

    auto run_backward = [&](Model& model, const Model::BackwardHook& hook) {
      model.forward({&x});
      Tensor grad;
      mse_loss(model.output(out), y, &grad);
      model.zero_gradients();
      model.add_output_gradient(out, grad);
      model.backward(hook);
    };

    run_backward(reference, Model::BackwardHook{});
    allreduce_gradients(reference, comm);

    GradientBucketer bucketer(comm, /*bucket_bytes=*/256);
    run_backward(hooked, [&bucketer](Weights& w) {
      bucketer.on_layer_backward(w);
    });
    bucketer.finish({&hooked});

    EXPECT_GE(bucketer.overlap_fraction(), 0.0);
    EXPECT_LE(bucketer.overlap_fraction(), 1.0);
    const auto expect = reference.flatten_gradients();
    const auto got = hooked.flatten_gradients();
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(expect[i], got[i], 1e-5f) << "element " << i;
    }
  });
}

TEST(Parallel, BucketerCoverageMismatchThrows) {
  // finish() must reject a sync whose hooks never packed the model's
  // gradients (a missing backward hook would silently skip averaging).
  using namespace bucketer_tests;
  comm::World::run(2, [](comm::Communicator& comm) {
    Model model = build_layered_model(100);
    GradientBucketer bucketer(comm);
    EXPECT_THROW(bucketer.finish({&model}), InvalidArgument);
  });
}

TEST(Parallel, BucketerSingleRankIsNoOp) {
  using namespace bucketer_tests;
  comm::World::run(1, [](comm::Communicator& comm) {
    Model model = build_layered_model(100);
    std::vector<float> grads(model.parameter_count(), 3.0f);
    model.load_flat_gradients(grads);
    GradientBucketer bucketer(comm);
    bucket_all(bucketer, model);
    EXPECT_EQ(bucketer.buckets_completed(), 0u);
    for (const float g : model.flatten_gradients()) {
      EXPECT_FLOAT_EQ(g, 3.0f);
    }
  });
}

// ---- checkpoint corruption fuzz ----------------------------------------------------

// Exhaustive single-byte corruption sweep over a weight checkpoint: every
// possible flipped byte must either be rejected with FormatError (naming
// the corrupt file) or load structurally intact — exactly the original
// weight count, never a partial result, never an untyped error. Header
// corruption (magic, version, lengths, count) must always be rejected;
// payload flips are allowed through because the format carries no checksum,
// but the size contract still holds.
TEST(Checkpoint, SingleByteCorruptionFuzz) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_fuzz.bin";
  std::vector<float> weights(32);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<float>(i) * 0.25f - 3.0f;
  }
  nn::save_weights(path, "fuzz-target", weights);

  std::vector<char> pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(pristine.empty());
  // Header = everything before the payload floats.
  const std::size_t header_bytes =
      pristine.size() - weights.size() * sizeof(float);

  for (std::size_t off = 0; off < pristine.size(); ++off) {
    std::vector<char> corrupt = pristine;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0xff);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    try {
      const std::vector<float> loaded = nn::load_weights(path);
      EXPECT_EQ(loaded.size(), weights.size()) << "flipped byte " << off;
      // Only name/payload bytes may survive a flip; the fixed header and
      // the length fields must be integrity-checked.
      const bool structural =
          off < 12 ||                              // magic + version
          (off >= 12 && off < 16) ||               // name length
          (off >= header_bytes - 8 && off < header_bytes);  // weight count
      EXPECT_FALSE(structural)
          << "structural header byte " << off << " accepted after a flip";
    } catch (const FormatError& ex) {
      EXPECT_NE(std::string(ex.what()).find(path.string()), std::string::npos)
          << "FormatError does not name the corrupt file: " << ex.what();
    }
  }

  // Truncation at every prefix length must be rejected, never partially
  // loaded.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{11}, header_bytes - 1,
        header_bytes, pristine.size() - sizeof(float), pristine.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_THROW((void)nn::load_weights(path), FormatError)
        << "truncated to " << keep << " bytes";
  }
}

// ---- dynamic loss scaling ----------------------------------------------------------

TEST(LossScale, SkipStepLeavesWeightsAndInnerStateUntouched) {
  auto controller = std::make_shared<LossScaleController>();
  const auto factory =
      make_loss_scaling_factory(make_adam_factory(0.05f), controller);
  auto opt = factory();
  EXPECT_EQ(opt->name(), "loss_scaled_adam");
  std::vector<float> weights{1.0f, -2.0f, 0.5f};

  // One good step first so the inner Adam carries non-trivial state.
  controller->begin_step();
  std::vector<float> grad{0.1f, -0.3f, 0.2f};
  tensor::scale(controller->scale(), grad);
  controller->observe(grad);
  ASSERT_FALSE(controller->should_skip());
  opt->step(weights, grad);
  controller->end_step();
  const std::vector<float> weights_after = weights;
  const std::vector<float> state_after = opt->serialize_state();
  const float scale_before = controller->scale();

  // Overflowed group: the step is skipped wholesale — weights AND the
  // inner optimizer's moment estimates stay bit-identical.
  controller->begin_step();
  const std::vector<float> bad{std::numeric_limits<float>::infinity(), 1.0f,
                               2.0f};
  controller->observe(bad);
  EXPECT_TRUE(controller->should_skip());
  opt->step(weights, bad);
  EXPECT_EQ(weights, weights_after);
  EXPECT_EQ(opt->serialize_state(), state_after);
  controller->end_step();
  EXPECT_EQ(controller->scale(), scale_before * 0.5f);
  EXPECT_EQ(controller->skipped_steps(), 1);
}

TEST(LossScale, BackoffAndGrowthRespectBounds) {
  LossScaleController::Config config;
  config.initial_scale = 4.0f;
  config.growth_interval = 2;
  config.min_scale = 1.0f;
  config.max_scale = 8.0f;
  LossScaleController ctl(config);
  const std::vector<float> good{1.0f};
  const std::vector<float> bad{std::numeric_limits<float>::quiet_NaN()};
  auto run = [&ctl](const std::vector<float>& g) {
    ctl.begin_step();
    ctl.observe(g);
    ctl.end_step();
  };
  run(good);
  EXPECT_EQ(ctl.scale(), 4.0f);  // one good step: below the interval
  run(good);
  EXPECT_EQ(ctl.scale(), 8.0f);  // second consecutive good step: doubled
  run(good);
  run(good);
  EXPECT_EQ(ctl.scale(), 8.0f);  // growth past max_scale is declined
  EXPECT_EQ(ctl.growth_events(), 1);
  run(bad);
  EXPECT_EQ(ctl.scale(), 4.0f);
  // A good step after an overflow restarts the growth interval.
  run(good);
  EXPECT_EQ(ctl.scale(), 4.0f);
  run(bad);
  run(bad);
  run(bad);
  EXPECT_EQ(ctl.scale(), 1.0f);  // floored at min_scale
  EXPECT_EQ(ctl.skipped_steps(), 4);
}

TEST(LossScale, PowerOfTwoScalingIsExact) {
  // Scaling the gradient by 2^16 and unscaling inside the decorator is
  // exact fp32 math: the trajectory matches unscaled Adam bit for bit.
  auto controller = std::make_shared<LossScaleController>();
  auto scaled = make_loss_scaling_factory(make_adam_factory(0.01f),
                                          controller)();
  auto plain = make_adam_factory(0.01f)();
  std::vector<float> w_scaled{0.7f, -1.3f, 2.9f, 0.01f};
  std::vector<float> w_plain = w_scaled;
  util::Rng rng(77);
  for (int step = 0; step < 25; ++step) {
    std::vector<float> grad(w_plain.size());
    for (auto& g : grad) g = static_cast<float>(rng.uniform(-1.0, 1.0));
    plain->step(w_plain, grad);
    std::vector<float> grad_scaled = grad;
    tensor::scale(controller->scale(), grad_scaled);
    controller->begin_step();
    controller->observe(grad_scaled);
    scaled->step(w_scaled, grad_scaled);
    controller->end_step();
  }
  EXPECT_EQ(w_scaled, w_plain);
  EXPECT_EQ(scaled->serialize_state(), plain->serialize_state());
}

TEST(LossScale, CloneFreshSharesControllerDropsState) {
  auto controller = std::make_shared<LossScaleController>();
  auto opt = make_loss_scaling_factory(make_adam_factory(0.05f),
                                       controller)();
  std::vector<float> w{1.0f};
  const std::vector<float> g{65536.0f};
  controller->begin_step();
  opt->step(w, g);
  controller->end_step();
  auto fresh = opt->clone_fresh();
  EXPECT_EQ(fresh->name(), opt->name());
  const auto state = fresh->serialize_state();
  for (const float v : state) EXPECT_EQ(v, 0.0f);
}

// ---- bf16 gradient wire encoding ---------------------------------------------------

TEST(Parallel, BucketerBf16WireHalvesBytesAndRanksAgree) {
  using namespace bucketer_tests;
  comm::World::run(4, [](comm::Communicator& comm) {
    Model fp32_model = build_layered_model(100);
    Model bf16_model = build_layered_model(100);
    util::Rng rng(900 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<float> grads(fp32_model.parameter_count());
    for (auto& g : grads) g = static_cast<float>(rng.uniform(-1.0, 1.0));
    fp32_model.load_flat_gradients(grads);
    bf16_model.load_flat_gradients(grads);

    GradientBucketer fp32_bucketer(comm, 512, WireDtype::Fp32);
    bucket_all(fp32_bucketer, fp32_model);
    GradientBucketer bf16_bucketer(comm, 512, WireDtype::Bf16);
    EXPECT_EQ(bf16_bucketer.wire_dtype(), WireDtype::Bf16);
    bucket_all(bf16_bucketer, bf16_model);

    // Same logical gradient volume, half the wire bytes.
    EXPECT_EQ(bf16_bucketer.bytes_reduced(), fp32_bucketer.bytes_reduced());
    EXPECT_EQ(bf16_bucketer.wire_bytes_sent() * 2,
              fp32_bucketer.wire_bytes_sent());

    // Every ring hop sends bf16, so a chunk's partial sum is quantized at
    // each of the (ranks - 1) reduce hops plus once by the owner. Each
    // hop's error is a bf16 half-ulp of the PARTIAL sum (gradients in
    // [-1, 1], partials up to ~4), so the bound is absolute in the partial
    // magnitude — small final values see relative error amplified by
    // cancellation, exactly the behaviour DESIGN.md documents.
    const auto expect = fp32_model.flatten_gradients();
    const auto got = bf16_model.flatten_gradients();
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(expect[i], got[i], 0.02f) << "element " << i;
      // Every value sits exactly on the bf16 grid (decode of the wire).
      ASSERT_EQ(got[i], tensor::quantize(got[i], tensor::HalfKind::Bf16))
          << "element " << i;
    }

    // Replicas must still agree bit-for-bit or they drift apart.
    const std::vector<float> everyone = comm.allgather(got);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(everyone[r * got.size() + i], got[i])
            << "rank " << r << " element " << i;
      }
    }
  });
}

TEST(Parallel, BucketerWireDtypeFromEnvDefaultsFp32) {
  comm::World::run(1, [](comm::Communicator& comm) {
    GradientBucketer bucketer(comm);
    EXPECT_EQ(bucketer.wire_dtype(), WireDtype::Fp32);
    EXPECT_EQ(bucketer.wire_bytes_sent(), 0u);
  });
}

// ---- reduced-precision weight checkpoints ------------------------------------------

TEST(Checkpoint, ReducedPrecisionRoundTripsLosslesslyAtStoredPrecision) {
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_half.bin";
  std::vector<float> weights(300);
  util::Rng rng(41);
  for (auto& w : weights) w = static_cast<float>(rng.uniform(-4.0, 4.0));
  weights[0] = 0.0f;
  weights[1] = -0.0f;
  weights[2] = std::ldexp(1.0f, -24);  // fp16 subnormal

  for (const auto dtype : {WeightsDtype::Bf16, WeightsDtype::Fp16}) {
    const tensor::HalfKind kind = half_kind(dtype);
    save_weights(path, "half-model", weights, dtype);
    std::string name;
    WeightsDtype loaded_dtype = WeightsDtype::Fp32;
    const std::vector<float> loaded =
        load_weights(path, &name, &loaded_dtype);
    EXPECT_EQ(name, "half-model");
    EXPECT_EQ(loaded_dtype, dtype);
    ASSERT_EQ(loaded.size(), weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      EXPECT_EQ(loaded[i], tensor::quantize(weights[i], kind))
          << "element " << i;
    }
    // Lossless at stored precision: re-saving the loaded values produces
    // a byte-identical image.
    const auto sibling = path.string() + ".again";
    save_weights(sibling, "half-model", loaded, dtype);
    std::ifstream f1(path, std::ios::binary), f2(sibling, std::ios::binary);
    const std::vector<char> b1((std::istreambuf_iterator<char>(f1)),
                               std::istreambuf_iterator<char>());
    const std::vector<char> b2((std::istreambuf_iterator<char>(f2)),
                               std::istreambuf_iterator<char>());
    EXPECT_EQ(b1, b2);
    // Half payloads are 2 bytes per weight (vs 4 for fp32).
    save_weights(sibling, "half-model", weights, WeightsDtype::Fp32);
    std::ifstream f3(sibling, std::ios::binary);
    const std::vector<char> fp32_bytes((std::istreambuf_iterator<char>(f3)),
                                       std::istreambuf_iterator<char>());
    // v2 adds one dtype byte to the header but halves the payload.
    EXPECT_EQ(fp32_bytes.size() + 1 - weights.size() * 2, b1.size());
  }
}

TEST(Checkpoint, Fp32DefaultStillWritesLegacyFormat) {
  // dtype defaulted (fp32) must produce the v1 image so downgraded readers
  // keep working; the loader reports Fp32 and returns exact values.
  const auto path =
      std::filesystem::temp_directory_path() / "ltfb_ckpt_v1.bin";
  const std::vector<float> weights{1.5f, -2.25f, 1e-30f, 3.0e30f};
  save_weights(path, "fp32-model", weights);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, 1u);  // legacy fp32 format, byte-compatible
  WeightsDtype dtype = WeightsDtype::Bf16;
  const std::vector<float> loaded = load_weights(path, nullptr, &dtype);
  EXPECT_EQ(dtype, WeightsDtype::Fp32);
  EXPECT_EQ(loaded, weights);
}

TEST(Checkpoint, WeightsDtypeNames) {
  EXPECT_STREQ(to_string(WeightsDtype::Fp32), "fp32");
  EXPECT_STREQ(to_string(WeightsDtype::Bf16), "bf16");
  EXPECT_STREQ(to_string(WeightsDtype::Fp16), "fp16");
  EXPECT_EQ(half_kind(WeightsDtype::Bf16), tensor::HalfKind::Bf16);
  EXPECT_EQ(half_kind(WeightsDtype::Fp16), tensor::HalfKind::Fp16);
}

}  // namespace
