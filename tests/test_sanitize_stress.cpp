// Multi-threaded stress tests for the concurrency substrate.
//
// These exist to give TSan/ASan/UBSan (-DLTFB_SANITIZE=...) something to
// bite on: they hammer World::run point-to-point matching and collectives,
// concurrent data-store get/put (including the begin_fetch helper thread),
// and ThreadPool submit/wait_idle/shutdown races. They also assert
// functional correctness so they are useful in uninstrumented builds.
//
// Thread counts and iteration counts are deliberately modest: under TSan a
// single test may run ~10x slower, and CI runs the whole suite three times
// (plain, asan+ubsan, tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <numeric>
#include <thread>

#include "comm/communicator.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::comm;
using namespace ltfb::util;

// ---- World::run / communicator -------------------------------------------------

TEST(WorldStress, PointToPointStormAnySource) {
  constexpr int kRanks = 4;
  constexpr int kMessages = 200;  // per sender, per peer
  World::run(kRanks, [](Communicator& comm) {
    const int n = comm.size();
    const int me = comm.rank();
    // Everyone floods everyone (including mixed tags), then drains with
    // ANY_SOURCE and checks per-source totals.
    for (int m = 0; m < kMessages; ++m) {
      for (int peer = 0; peer < n; ++peer) {
        if (peer == me) continue;
        const float value[2] = {static_cast<float>(me),
                                static_cast<float>(m)};
        comm.send(peer, m % 3, std::span<const float>(value, 2));
      }
    }
    std::vector<int> received(static_cast<std::size_t>(n), 0);
    for (int m = 0; m < kMessages; ++m) {
      for (int peer = 0; peer < n - 1; ++peer) {
        int source = -1;
        const Buffer raw = comm.recv(kAnySource, m % 3, &source);
        const std::vector<float> payload = comm::Deserializer::unpack_floats(raw);
        ASSERT_EQ(payload.size(), 2u);
        ASSERT_EQ(static_cast<int>(payload[0]), source);
        ++received[static_cast<std::size_t>(source)];
      }
    }
    for (int peer = 0; peer < n; ++peer) {
      EXPECT_EQ(received[static_cast<std::size_t>(peer)],
                peer == me ? 0 : kMessages);
    }
  });
}

TEST(WorldStress, BackToBackMixedCollectives) {
  constexpr int kRanks = 4;
  constexpr int kIters = 40;
  World::run(kRanks, [](Communicator& comm) {
    const int n = comm.size();
    const float fn = static_cast<float>(n);
    for (int iter = 0; iter < kIters; ++iter) {
      const float fi = static_cast<float>(iter);

      std::vector<float> sum(7, static_cast<float>(comm.rank()) + fi);
      comm.allreduce(sum);
      const float expected =
          fn * fi + fn * (fn - 1.0f) / 2.0f;  // sum of ranks + n*iter
      for (const float v : sum) ASSERT_FLOAT_EQ(v, expected);

      comm.barrier();

      std::vector<float> bcast(3, 0.0f);
      if (comm.rank() == iter % n) {
        bcast.assign(3, fi);
      }
      comm.broadcast(iter % n, std::span<float>(bcast));
      for (const float v : bcast) ASSERT_FLOAT_EQ(v, fi);

      const float mine[1] = {static_cast<float>(comm.rank()) * fi};
      const std::vector<float> all = comm.allgather(mine);
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        ASSERT_FLOAT_EQ(all[static_cast<std::size_t>(r)],
                        static_cast<float>(r) * fi);
      }

      std::vector<float> reduced(5, 1.0f);
      comm.reduce(iter % n, reduced, ReduceOp::Sum);
      if (comm.rank() == iter % n) {
        for (const float v : reduced) ASSERT_FLOAT_EQ(v, fn);
      }
    }
  });
}

TEST(WorldStress, SplitSubcommunicatorsRunCollectivesConcurrently) {
  constexpr int kRanks = 8;
  constexpr int kIters = 30;
  World::run(kRanks, [](Communicator& world) {
    // Even / odd trainers run independent allreduce streams at full speed;
    // nothing synchronises the two groups, so their internal-tag traffic
    // interleaves arbitrarily in the shared mailboxes.
    const int color = world.rank() % 2;
    Communicator trainer = world.split(color, world.rank());
    const float group_size = static_cast<float>(trainer.size());
    for (int iter = 0; iter < kIters; ++iter) {
      std::vector<float> acc(11, static_cast<float>(iter + color));
      trainer.allreduce(acc);
      for (const float v : acc) {
        ASSERT_FLOAT_EQ(v, group_size * static_cast<float>(iter + color));
      }
      trainer.barrier();
    }
    world.barrier();
  });
}

TEST(WorldStress, RepeatedWorldConstructionAndTeardown) {
  for (int round = 0; round < 15; ++round) {
    World::run(3, [round](Communicator& comm) {
      std::vector<float> v(4, static_cast<float>(comm.rank() + round));
      comm.allreduce(v, ReduceOp::Max);
      for (const float x : v) {
        ASSERT_FLOAT_EQ(x, static_cast<float>(comm.size() - 1 + round));
      }
    });
  }
}

// ---- data store ----------------------------------------------------------------

struct StressFixture {
  std::filesystem::path dir;
  std::vector<std::filesystem::path> paths;
  data::SampleSchema schema;
};

StressFixture make_stress_fixture(const std::string& name, std::size_t total,
                                  std::size_t files) {
  StressFixture fx;
  fx.dir = std::filesystem::temp_directory_path() / ("ltfb_stress_" + name);
  std::filesystem::remove_all(fx.dir);
  fx.schema.input_width = 4;
  fx.schema.scalar_width = 6;
  fx.schema.image_width = 2;
  std::vector<data::Sample> samples;
  for (data::SampleId id = 0; id < total; ++id) {
    data::Sample sample;
    sample.id = id;
    sample.input.assign(4, static_cast<float>(id));
    sample.scalars.assign(6, static_cast<float>(id) * 2.0f);
    sample.images.assign(2, static_cast<float>(id) * 3.0f);
    samples.push_back(std::move(sample));
  }
  fx.paths = data::write_bundle_set(fx.dir, fx.schema, samples, files);
  return fx;
}

void expect_sample(const data::Sample& sample, data::SampleId id) {
  ASSERT_EQ(sample.id, id);
  ASSERT_FALSE(sample.scalars.empty());
  ASSERT_FLOAT_EQ(sample.scalars[0], static_cast<float>(id) * 2.0f);
}

TEST(DataStoreStress, ConcurrentExchangeAcrossRanks) {
  const StressFixture fx = make_stress_fixture("exchange", 64, 4);
  datastore::BundleCatalog catalog(fx.paths);
  constexpr int kRanks = 4;
  constexpr std::size_t kSteps = 25;
  World::run(kRanks, [&](Communicator& comm) {
    datastore::DataStore store(comm, &catalog, datastore::PopulateMode::Preloaded);
    store.preload();
    const auto total = catalog.total_samples();
    for (std::size_t step = 0; step < kSteps; ++step) {
      // Each rank wants a different, overlapping, rotating window of ids;
      // most are remote, so every step is a full request/reply exchange.
      std::vector<data::SampleId> want;
      for (std::size_t k = 0; k < 12; ++k) {
        want.push_back(
            (static_cast<std::size_t>(comm.rank()) * 17 + step * 5 + k * 3) %
            total);
      }
      const auto got = store.fetch(want);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_sample(got[i], want[i]);
      }
    }
    EXPECT_GT(store.stats().remote_fetches, 0u);
  });
}

TEST(DataStoreStress, DynamicFirstEpochThenExchange) {
  const StressFixture fx = make_stress_fixture("dynamic", 48, 3);
  datastore::BundleCatalog catalog(fx.paths);
  constexpr int kRanks = 3;
  World::run(kRanks, [&](Communicator& comm) {
    datastore::DataStore store(comm, &catalog, datastore::PopulateMode::Dynamic);
    const auto total = catalog.total_samples();
    // Epoch 1: disjoint ids per rank (ownership must be unambiguous).
    std::vector<data::SampleId> mine;
    for (data::SampleId id = 0; id < total; ++id) {
      if (static_cast<int>(id % static_cast<std::size_t>(comm.size())) ==
          comm.rank()) {
        mine.push_back(id);
      }
    }
    const auto first_epoch = store.fetch(mine);
    for (const auto& sample : first_epoch) {
      ASSERT_FALSE(sample.scalars.empty());
    }
    store.build_directory();
    // Epoch 2+: everyone asks for everything, in shifted order.
    for (int epoch = 0; epoch < 6; ++epoch) {
      std::vector<data::SampleId> want;
      for (std::size_t k = 0; k < total; ++k) {
        want.push_back((k + static_cast<std::size_t>(comm.rank() + epoch)) %
                       total);
      }
      const auto got = store.fetch(want);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_sample(got[i], want[i]);
      }
    }
  });
}

TEST(DataStoreStress, PrefetchPipelineOverlapsSteps) {
  const StressFixture fx = make_stress_fixture("prefetch", 40, 4);
  datastore::BundleCatalog catalog(fx.paths);
  constexpr int kRanks = 4;
  constexpr std::size_t kSteps = 12;
  World::run(kRanks, [&](Communicator& comm) {
    datastore::DataStore store(comm, &catalog, datastore::PopulateMode::Preloaded);
    store.preload();
    const auto total = catalog.total_samples();
    auto ids_for_step = [&](std::size_t step) {
      std::vector<data::SampleId> want;
      for (std::size_t k = 0; k < 8; ++k) {
        want.push_back(
            (step * 7 + k + static_cast<std::size_t>(comm.rank()) * 11) %
            total);
      }
      return want;
    };
    store.begin_fetch(ids_for_step(0));
    for (std::size_t step = 0; step < kSteps; ++step) {
      // While the helper owns the communicator, the owner thread must not
      // touch the store; it "trains" on the previous batch instead.
      EXPECT_TRUE(store.fetch_in_flight());
      const auto batch = store.collect_fetch();
      if (step + 1 < kSteps) {
        store.begin_fetch(ids_for_step(step + 1));
      }
      const auto want = ids_for_step(step);
      ASSERT_EQ(batch.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        expect_sample(batch[i], want[i]);
      }
    }
  });
}

// ---- thread pool ---------------------------------------------------------------

TEST(ThreadPoolStress, ConcurrentSubmittersAndWaitIdle) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 3;
  constexpr int kTasksEach = 300;
  std::atomic<int> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&executed] { ++executed; });
      }
    });
  }
  // wait_idle churn concurrent with submission: every return must observe
  // a consistent (momentarily idle) pool, never a worker mid-task.
  for (int i = 0; i < 20; ++i) {
    pool.wait_idle();
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, WaitIdleNeverReturnsMidTask) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&in_flight, &done] {
      ++in_flight;
      std::this_thread::yield();
      --in_flight;
      ++done;
    });
  }
  pool.wait_idle();
  // wait_idle holds until active_ == 0, which is only decremented after the
  // task body (including the counter updates above) has finished.
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStress, ShutdownRacingSubmitThrowsOrRuns) {
  // Tear a pool down while this thread keeps submitting. Every submit must
  // either enqueue (and the task then runs before the workers join) or
  // throw ltfb::Error — never deadlock, never drop an accepted task. A
  // gate-blocked worker keeps the destructor parked in join() so the pool
  // object is guaranteed alive for the whole submit loop.
  for (int round = 0; round < 5; ++round) {
    auto pool = std::make_unique<ThreadPool>(1);
    ThreadPool* p = pool.get();
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    p->submit([gate] { gate.wait(); });
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    std::thread destroyer([&pool] { pool.reset(); });
    bool threw = false;
    for (int i = 0; i < 200000 && !threw; ++i) {
      if (i % 64 == 0) std::this_thread::yield();  // let the destroyer run
      try {
        p->submit([&executed] { ++executed; });
        ++accepted;
      } catch (const Error&) {
        threw = true;  // destructor has flagged shutdown
      }
    }
    EXPECT_TRUE(threw);
    release.set_value();  // unblock the worker; destructor drains and joins
    destroyer.join();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

}  // namespace
