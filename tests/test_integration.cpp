// End-to-end integration tests: the full paper pipeline at miniature scale.
//
//   ensemble workflow (JAG + spectral DOE -> bundle files)
//     -> bundle catalog -> distributed in-memory data store (preload)
//     -> normalization -> LTFB tournament training of the CycleGAN
//     -> validation on held-out data.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <mutex>
#include <numeric>

#include "comm/communicator.hpp"
#include "core/ltfb.hpp"
#include "core/ltfb_comm.hpp"
#include "core/population.hpp"
#include "datastore/data_store.hpp"
#include "workflow/ensemble.hpp"

namespace {

using namespace ltfb;

jag::JagConfig tiny_jag() {
  jag::JagConfig config;
  config.image_size = 4;
  config.num_views = 3;
  config.num_channels = 1;
  config.noise_level = 0.01;
  return config;
}

gan::CycleGanConfig tiny_gan(const jag::JagConfig& jag_config) {
  gan::CycleGanConfig config;
  config.image_width = jag_config.image_features();
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

TEST(Integration, EnsembleToDataStoreToDataset) {
  // Phase 1: generate the campaign into bundle files.
  const jag::JagConfig jag_config = tiny_jag();
  const jag::JagModel model(jag_config);
  const workflow::SpectralSampler sampler;
  workflow::EnsembleConfig ensemble;
  ensemble.total_samples = 120;
  ensemble.samples_per_file = 20;
  ensemble.workers = 2;
  ensemble.output_directory =
      std::filesystem::temp_directory_path() / "ltfb_integration_e2e";
  std::filesystem::remove_all(ensemble.output_directory);
  const auto result = workflow::run_ensemble(model, sampler, ensemble);
  ASSERT_TRUE(result.success);

  // Phase 2: two trainer ranks preload the campaign through the store and
  // reassemble the full dataset from fetches.
  datastore::BundleCatalog catalog(result.bundle_paths);
  std::mutex mutex;
  std::vector<data::Sample> fetched;
  comm::World::run(2, [&](comm::Communicator& comm) {
    datastore::DataStore store(comm, &catalog,
                               datastore::PopulateMode::Preloaded);
    store.preload();
    // Rank 0 gathers everything through the exchange protocol; rank 1
    // participates by serving (fetching a dummy spread of its own).
    std::vector<data::SampleId> wanted;
    for (data::SampleId id = 0; id < 120; ++id) {
      if (comm.rank() == 0 || id % 2 == 1) wanted.push_back(id);
    }
    auto samples = store.fetch(wanted);
    if (comm.rank() == 0) {
      const std::scoped_lock lock(mutex);
      fetched = std::move(samples);
    }
  });
  ASSERT_EQ(fetched.size(), 120u);

  // Phase 3: the fetched data must be byte-identical to the simulator.
  for (const auto& sample : fetched) {
    const auto expected = model.run(sampler.point(sample.id));
    ASSERT_EQ(sample.scalars.size(), jag::kNumScalars);
    EXPECT_EQ(sample.scalars[0], expected.scalars[0]);
    EXPECT_EQ(sample.images, expected.images);
  }

  // Phase 4: normalize and train a small LTFB population on it.
  data::SampleSchema schema = catalog.schema();
  data::Dataset dataset(schema, std::move(fetched));
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  const auto splits = data::split_dataset(dataset.size(), 0.6, 0.2, 80);

  core::PopulationConfig population;
  population.num_trainers = 2;
  population.batch_size = 8;
  population.model = tiny_gan(jag_config);
  population.seed = 81;

  core::LtfbConfig ltfb;
  ltfb.steps_per_round = 6;
  ltfb.rounds = 4;
  ltfb.pretrain_steps = 10;

  core::LocalLtfbDriver driver(
      core::build_population(dataset, splits, population), ltfb);
  const double initial =
      core::evaluate_gan(driver.trainer(0).model(), dataset,
                         splits.validation, 8)
          .total();
  driver.run();
  const std::size_t best = driver.best_trainer(splits.validation, 8);
  const double final_loss =
      core::evaluate_gan(driver.trainer(best).model(), dataset,
                         splits.validation, 8)
          .total();
  EXPECT_LT(final_loss, initial);
}

TEST(Integration, DistributedPipelineWithDataParallelTrainers) {
  // Generated data -> distributed LTFB with 2 trainers x 2 ranks.
  const jag::JagConfig jag_config = tiny_jag();
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, 320, 90);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 91);

  core::DistributedLtfbConfig config;
  config.ranks_per_trainer = 2;
  config.batch_size = 16;
  config.ltfb.steps_per_round = 5;
  config.ltfb.rounds = 3;
  config.ltfb.pretrain_steps = 5;
  config.model = tiny_gan(jag_config);
  config.seed = 92;

  std::mutex mutex;
  std::vector<core::DistributedLtfbOutcome> outcomes;
  comm::World::run(4, [&](comm::Communicator& world) {
    const auto outcome =
        core::run_distributed_ltfb(world, dataset, splits, config);
    const std::scoped_lock lock(mutex);
    outcomes.push_back(outcome);
  });
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(std::isfinite(outcome.final_validation_loss));
  }
}

TEST(Integration, LtfbSpreadsGoodModelsThroughPopulation) {
  // After enough rounds every trainer should be close in validation loss:
  // winners propagate ("thousand flowers"), so the population cannot
  // contain a trainer stuck at its initial loss.
  const jag::JagConfig jag_config = tiny_jag();
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, 400, 93);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 94);

  core::PopulationConfig population;
  population.num_trainers = 4;
  population.batch_size = 16;
  population.model = tiny_gan(jag_config);
  population.seed = 95;

  core::LtfbConfig ltfb;
  ltfb.steps_per_round = 8;
  ltfb.rounds = 5;
  ltfb.pretrain_steps = 10;

  // Capture untrained loss before the driver takes ownership.
  auto trainers = core::build_population(dataset, splits, population);
  const double untrained =
      core::evaluate_gan(trainers[0]->model(), dataset, splits.validation,
                         16)
          .total();
  core::LocalLtfbDriver driver(std::move(trainers), ltfb);
  driver.run();

  for (std::size_t i = 0; i < driver.population(); ++i) {
    const double loss =
        core::evaluate_gan(driver.trainer(i).model(), dataset,
                           splits.validation, 16)
            .total();
    EXPECT_LT(loss, untrained) << "trainer " << i << " never improved";
  }
}

}  // namespace
