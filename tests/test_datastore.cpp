// Tests for the distributed in-memory data store: catalog access patterns,
// preloaded vs dynamic population, directory construction, the per-step
// exchange protocol, and memory-capacity enforcement.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <numeric>

#include "comm/communicator.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::data;
using namespace ltfb::datastore;

struct Fixture {
  std::filesystem::path dir;
  std::vector<std::filesystem::path> paths;
  SampleSchema schema;
  std::vector<Sample> samples;
};

/// Writes `total` samples across `files` bundles into a temp directory.
Fixture make_fixture(const std::string& name, std::size_t total,
                     std::size_t files) {
  Fixture fx;
  fx.dir = std::filesystem::temp_directory_path() / ("ltfb_ds_" + name);
  std::filesystem::remove_all(fx.dir);
  fx.schema.input_width = 5;
  fx.schema.scalar_width = 15;
  fx.schema.image_width = 6;
  for (SampleId id = 0; id < total; ++id) {
    Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, static_cast<float>(id) * 2.0f);
    sample.images.assign(6, static_cast<float>(id) * 3.0f);
    fx.samples.push_back(std::move(sample));
  }
  fx.paths = write_bundle_set(fx.dir, fx.schema, fx.samples, files);
  return fx;
}

// ---- catalog -------------------------------------------------------------------

TEST(Catalog, LocateMapsSequentialIds) {
  const Fixture fx = make_fixture("locate", 20, 4);
  BundleCatalog catalog(fx.paths);
  EXPECT_EQ(catalog.total_samples(), 20u);
  EXPECT_EQ(catalog.file_count(), 4u);
  EXPECT_EQ(catalog.samples_in_file(0), 5u);
  const auto loc = catalog.locate(12);
  EXPECT_EQ(loc.file, 2u);
  EXPECT_EQ(loc.index, 2u);
}

TEST(Catalog, LocateOutOfRangeThrows) {
  const Fixture fx = make_fixture("locate_oor", 10, 2);
  BundleCatalog catalog(fx.paths);
  EXPECT_THROW(catalog.locate(10), InvalidArgument);
}

TEST(Catalog, RandomReadCountsOpens) {
  const Fixture fx = make_fixture("rand", 20, 4);
  BundleCatalog catalog(fx.paths);
  for (const SampleId id : {SampleId{3}, SampleId{17}, SampleId{8}}) {
    const Sample sample = catalog.read(id);
    EXPECT_EQ(sample.id, id);
    EXPECT_FLOAT_EQ(sample.scalars[0], static_cast<float>(id) * 2.0f);
  }
  EXPECT_EQ(catalog.stats().file_opens, 3u);
  EXPECT_EQ(catalog.stats().sample_reads, 3u);
}

TEST(Catalog, WholeFileReadIsOneOpen) {
  const Fixture fx = make_fixture("whole", 20, 4);
  BundleCatalog catalog(fx.paths);
  const auto samples = catalog.read_file(1);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples.front().id, 5u);
  EXPECT_EQ(catalog.stats().file_opens, 1u);
  EXPECT_EQ(catalog.stats().whole_file_reads, 1u);
  EXPECT_EQ(catalog.stats().sample_reads, 5u);
}

TEST(Catalog, EmptyPathListThrows) {
  EXPECT_THROW(BundleCatalog catalog({}), InvalidArgument);
}

// ---- preloaded mode ---------------------------------------------------------------

TEST(DataStore, PreloadPartitionsOwnershipAcrossRanks) {
  const Fixture fx = make_fixture("preload", 40, 8);
  BundleCatalog catalog(fx.paths);
  std::mutex mutex;
  std::size_t total_owned = 0;
  comm::World::run(4, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    EXPECT_TRUE(store.has_directory());
    // 8 files round-robin over 4 ranks -> 2 files = 10 samples each.
    EXPECT_EQ(store.owned_samples(), 10u);
    const std::scoped_lock lock(mutex);
    total_owned += store.owned_samples();
  });
  EXPECT_EQ(total_owned, 40u);
}

TEST(DataStore, FetchReturnsCorrectSamplesInOrder) {
  const Fixture fx = make_fixture("fetch", 40, 8);
  BundleCatalog catalog(fx.paths);
  comm::World::run(4, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    // Each rank asks for a different mix of local and remote samples.
    const std::vector<SampleId> wanted{
        static_cast<SampleId>(comm.rank()),
        static_cast<SampleId>(39 - comm.rank()),
        static_cast<SampleId>(20 + comm.rank())};
    const auto got = store.fetch(wanted);
    ASSERT_EQ(got.size(), wanted.size());
    for (std::size_t i = 0; i < wanted.size(); ++i) {
      EXPECT_EQ(got[i].id, wanted[i]);
      EXPECT_FLOAT_EQ(got[i].images[0], static_cast<float>(wanted[i]) * 3.0f);
    }
  });
}

TEST(DataStore, NoFileTrafficAfterPreload) {
  const Fixture fx = make_fixture("nofile", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    comm.barrier();
    const std::size_t opens_after_preload = catalog.stats().file_opens;
    for (int step = 0; step < 5; ++step) {
      (void)store.fetch({static_cast<SampleId>(step),
                         static_cast<SampleId>(19 - step)});
    }
    comm.barrier();
    // "During training itself, no data is read from the file system."
    EXPECT_EQ(catalog.stats().file_opens, opens_after_preload);
  });
}

TEST(DataStore, FetchWithDuplicateIds) {
  const Fixture fx = make_fixture("dup", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    const auto got = store.fetch({7, 7, 7});
    ASSERT_EQ(got.size(), 3u);
    for (const auto& sample : got) EXPECT_EQ(sample.id, 7u);
  });
}

TEST(DataStore, SingleRankWorksWithoutExchange) {
  const Fixture fx = make_fixture("single", 10, 2);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    const auto got = store.fetch({0, 9, 5});
    EXPECT_EQ(got[1].id, 9u);
    EXPECT_EQ(store.stats().remote_fetches, 0u);
    EXPECT_EQ(store.stats().local_hits, 3u);
  });
}

TEST(DataStore, PreloadOnDynamicStoreThrows) {
  const Fixture fx = make_fixture("wrongmode", 10, 2);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Dynamic);
    EXPECT_THROW(store.preload(), InvalidArgument);
  });
}

// ---- dynamic mode ------------------------------------------------------------------

TEST(DataStore, DynamicFirstEpochReadsFilesThenCaches) {
  const Fixture fx = make_fixture("dynamic", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Dynamic);
    // Epoch 0: every sample comes off the file system once.
    (void)store.fetch({0, 1, 2});
    EXPECT_EQ(store.stats().file_reads, 3u);
    // Repeat fetch within epoch 0: local hits now.
    (void)store.fetch({0, 1, 2});
    EXPECT_EQ(store.stats().file_reads, 3u);
    EXPECT_EQ(store.stats().local_hits, 3u);
  });
}

TEST(DataStore, DynamicDirectoryServesLaterEpochsFromMemory) {
  const Fixture fx = make_fixture("dyn_dir", 24, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(3, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Dynamic);
    // Epoch 0: rank r consumes its disjoint shard.
    std::vector<SampleId> shard;
    for (SampleId id = static_cast<SampleId>(comm.rank()); id < 24; id += 3) {
      shard.push_back(id);
    }
    (void)store.fetch(shard);
    store.build_directory();
    EXPECT_TRUE(store.has_directory());
    comm.barrier();
    const std::size_t file_reads_frozen = store.stats().file_reads;
    // Epoch 1: arbitrary samples come from memory via exchange.
    const auto got = store.fetch({5, 11, 17});
    EXPECT_EQ(got[0].id, 5u);
    EXPECT_EQ(got[2].id, 17u);
    EXPECT_EQ(store.stats().file_reads, file_reads_frozen);
  });
}

TEST(DataStore, OrphansAdoptedDuringDirectoryBuild) {
  const Fixture fx = make_fixture("orphans", 12, 3);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Dynamic);
    // Only ids 0..5 are used in "epoch 0"; 6..11 become orphans.
    std::vector<SampleId> used;
    for (SampleId id = static_cast<SampleId>(comm.rank()); id < 6; id += 2) {
      used.push_back(id);
    }
    (void)store.fetch(used);
    store.build_directory();
    // Orphans must now be fetchable without error.
    const auto got = store.fetch({9, 10});
    EXPECT_EQ(got[0].id, 9u);
    EXPECT_EQ(got[1].id, 10u);
  });
}

TEST(DataStore, UniverseRestrictsAdoption) {
  const Fixture fx = make_fixture("universe", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    // Universe = first half only.
    std::vector<SampleId> universe(10);
    std::iota(universe.begin(), universe.end(), 0);
    DataStore store(comm, &catalog, PopulateMode::Dynamic, 0, universe);
    (void)store.fetch({0, 1});
    store.build_directory();
    // All universe samples owned; out-of-universe ids are NOT adopted.
    EXPECT_EQ(store.owned_samples(), 10u);
    EXPECT_THROW((void)store.fetch({15}), InvalidArgument);
  });
}

TEST(DataStore, UniverseOutOfCatalogThrows) {
  const Fixture fx = make_fixture("universe_bad", 10, 2);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    EXPECT_THROW(DataStore(comm, &catalog, PopulateMode::Dynamic, 0, {99}),
                 InvalidArgument);
  });
}

TEST(DataStore, NegativeShrinkTimeoutThrows) {
  const Fixture fx = make_fixture("shrink_budget", 10, 2);
  BundleCatalog catalog(fx.paths);
  comm::World::run(1, [&](comm::Communicator& comm) {
    // Zero derives the legacy 4x exchange budget; negative is rejected.
    EXPECT_THROW(DataStore(comm, &catalog, PopulateMode::Dynamic, 0, {},
                           std::chrono::milliseconds(100),
                           std::chrono::milliseconds(-1)),
                 InvalidArgument);
  });
}

// ---- capacity accounting -------------------------------------------------------------

TEST(DataStore, CapacityEnforcedOnPreload) {
  const Fixture fx = make_fixture("capacity", 40, 8);
  BundleCatalog catalog(fx.paths);
  const std::size_t sample_bytes = fx.samples[0].byte_size();
  comm::World::run(1, [&](comm::Communicator& comm) {
    // Room for only 5 samples; the rank must load 40.
    DataStore store(comm, &catalog, PopulateMode::Preloaded,
                    5 * sample_bytes + 1);
    EXPECT_THROW(store.preload(), CapacityError);
  });
}

TEST(DataStore, CapacitySufficientSucceeds) {
  const Fixture fx = make_fixture("capacity_ok", 20, 4);
  BundleCatalog catalog(fx.paths);
  const std::size_t sample_bytes = fx.samples[0].byte_size();
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded,
                    10 * sample_bytes + 16);
    EXPECT_NO_THROW(store.preload());
    EXPECT_EQ(store.stats().cached_samples, 10u);
    EXPECT_EQ(store.stats().cached_bytes, 10 * sample_bytes);
  });
}

TEST(DataStore, BytesExchangedTracked) {
  const Fixture fx = make_fixture("bytes", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    // Every rank requests one sample the other rank owns (files are
    // round-robin: rank 0 owns ids 0-4 and 10-14).
    const SampleId remote = comm.rank() == 0 ? SampleId{5} : SampleId{0};
    (void)store.fetch({remote});
    EXPECT_EQ(store.stats().remote_fetches, 1u);
    EXPECT_GT(store.stats().bytes_exchanged, 0u);
  });
}

TEST(DataStore, PrefetchRoundTripAndContractChecks) {
  const Fixture fx = make_fixture("prefetch_contract", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    EXPECT_THROW(store.collect_fetch(), InvalidArgument);  // nothing begun
    store.begin_fetch({SampleId{1}, SampleId{7}});
    EXPECT_TRUE(store.fetch_in_flight());
    // While the helper owns the communicator and the store's internals,
    // every other entry point fails fast instead of racing.
    EXPECT_THROW(store.begin_fetch({SampleId{2}}), InvalidArgument);
    EXPECT_THROW(store.fetch({SampleId{2}}), InvalidArgument);
    EXPECT_THROW(store.stats(), InvalidArgument);
    EXPECT_THROW(store.build_directory(), InvalidArgument);
    const auto batch = store.collect_fetch();
    EXPECT_FALSE(store.fetch_in_flight());
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].id, SampleId{1});
    EXPECT_EQ(batch[1].id, SampleId{7});
    // After collect, the store is usable again.
    EXPECT_GE(store.stats().local_hits + store.stats().remote_fetches, 2u);
  });
}

// Regression: the prefetch helper used to write prefetch_result_ with no
// lock while the owner thread could observe it; both sides go through
// prefetch_mutex_ now. Repeated begin/collect cycles exercise the hand-off
// (including remote fetches) without losing or duplicating samples.
TEST(DataStore, PrefetchRepeatedHandOff) {
  const Fixture fx = make_fixture("prefetch_repeat", 20, 4);
  BundleCatalog catalog(fx.paths);
  comm::World::run(2, [&](comm::Communicator& comm) {
    DataStore store(comm, &catalog, PopulateMode::Preloaded);
    store.preload();
    for (std::uint64_t iter = 0; iter < 8; ++iter) {
      const SampleId first{(iter * 3) % 20};
      const SampleId second{(iter * 3 + 7) % 20};
      store.begin_fetch({first, second});
      const auto batch = store.collect_fetch();
      ASSERT_EQ(batch.size(), 2u);
      EXPECT_EQ(batch[0].id, first);
      EXPECT_EQ(batch[1].id, second);
      EXPECT_FALSE(store.fetch_in_flight());
    }
  });
}

}  // namespace
