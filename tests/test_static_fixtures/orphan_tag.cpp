// Analyzer fixture — never compiled. The kOrphanTagBase family is only ever
// sent: no recv/irecv/sendrecv anywhere consumes it, so every message posted
// with it rots in the peer's mailbox and the bytes are lost protocol-wide.
//
// expect-finding: tag-pairing

#include "comm/communicator.hpp"

namespace fixture {

constexpr int kOrphanTagBase = 1 << 12;

void announce(ltfb::comm::Communicator& comm, int peer,
              const ltfb::comm::Buffer& payload) {
  // BAD: send endpoint with no matching receive endpoint in the tree.
  comm.send(peer, kOrphanTagBase, payload);
}

}  // namespace fixture
