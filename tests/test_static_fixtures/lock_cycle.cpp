// Analyzer fixture — never compiled. transfer() takes ledger_mutex_ then
// audit_mutex_; reconcile() takes them in the opposite order. Two threads
// running one each can deadlock holding the lock the other needs.
//
// expect-finding: lock-order

#include "util/annotations.hpp"

namespace fixture {

class Ledger {
 public:
  void transfer() {
    const util::MutexLock lock(ledger_mutex_);
    const util::MutexLock audit(audit_mutex_);  // order: ledger -> audit
  }

  void reconcile() {
    const util::MutexLock audit(audit_mutex_);
    const util::MutexLock lock(ledger_mutex_);  // BAD: audit -> ledger
  }

 private:
  util::Mutex ledger_mutex_;
  util::Mutex audit_mutex_;
};

}  // namespace fixture
