// Analyzer fixture — never compiled. Subsystem a_sub claims tag base 1<<10
// for its ping traffic; b_sub (sibling subsystem) claims the same value.
// Mailbox matching keys on (peer, tag), so the two protocols steal each
// other's messages. The analyzer reports the collision once, on the second
// constant it sees.
//
// expect-finding: tag-reuse

#include "comm/communicator.hpp"

namespace fixture_a {

constexpr int kPingTagBase = 1 << 10;

void ping(ltfb::comm::Communicator& comm, int peer,
          std::chrono::milliseconds deadline) {
  comm.send(peer, kPingTagBase, ltfb::comm::Buffer{});
  (void)comm.recv(peer, kPingTagBase, deadline);
}

}  // namespace fixture_a
