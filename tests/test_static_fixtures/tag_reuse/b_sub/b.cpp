// Analyzer fixture — never compiled. Second half of the tag_reuse entry:
// kPongTagBase collides with a_sub's kPingTagBase (both 1<<10). See
// a_sub/a.cpp for the expect-finding declaration.

#include "comm/communicator.hpp"

namespace fixture_b {

constexpr int kPongTagBase = 1 << 10;  // BAD: same value as kPingTagBase

void pong(ltfb::comm::Communicator& comm, int peer,
          std::chrono::milliseconds deadline) {
  comm.send(peer, kPongTagBase, ltfb::comm::Buffer{});
  (void)comm.recv(peer, kPongTagBase, deadline);
}

}  // namespace fixture_b
