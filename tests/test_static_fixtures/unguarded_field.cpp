// Analyzer fixture — never compiled. A member annotated LTFB_GUARDED_BY is
// read and written outside any critical section: the increment in bump() is
// a data race the moment two threads share a Counter.
//
// expect-finding: guarded-field

#include "util/annotations.hpp"

namespace fixture {

class Counter {
 public:
  void bump() {
    ++count_;  // BAD: no MutexLock on mutex_, no LTFB_REQUIRES(mutex_)
  }

  int read() const {
    const util::MutexLock lock(mutex_);
    return count_;  // OK: lock held for the whole scope
  }

 private:
  mutable util::Mutex mutex_;
  int count_ LTFB_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
