// Known-bad fixture: a scheduler that issues commands on the scheduler
// command tag namespace but never collects a deadline-bounded ack. A dead
// target would hang this scheduler forever — the sched-ack rule must fire.
//
// The command family itself is tag-paired (a recv exists on the client
// side below) and every recv carries a deadline, so ONLY sched-ack fires.
// expect-finding: sched-ack
#include <chrono>

namespace fixture {

inline constexpr int kSchedCmdTagBase = 1 << 25;
inline constexpr int kSchedAckTagBase = 3 << 24;

struct Buffer {};

struct Comm {
  void send(int dst, int tag, const Buffer& payload);
  Buffer recv(int src, int tag, std::chrono::milliseconds deadline);
};

// Scheduler side: sends the boundary envelope... and walks away. The
// matching ack recv on kSchedAckTagBase is missing entirely.
void issue_boundary(Comm& world, int target) {
  Buffer envelope;
  world.send(target, kSchedCmdTagBase + 7, envelope);
}

// Client side: receives the command under a deadline (keeps the command
// family tag-paired and comm-deadline clean).
Buffer await_boundary(Comm& world, std::chrono::milliseconds ack_deadline) {
  return world.recv(0, kSchedCmdTagBase + 7, ack_deadline);
}

}  // namespace fixture
