// Analyzer fixture — never compiled. The Deadline options form added with
// the backend redesign has an explicit unbounded spelling; writing it out
// at a blocking call site in the fault-tolerant layers is exactly the hang
// the comm-deadline rule hunts, even though the argument text contains the
// word "Deadline". The shrink() rendezvous is deadline-carrying too and is
// checked the same way.
//
// expect-finding: comm-deadline

#include "comm/communicator.hpp"

namespace fixture {

constexpr int kSyncTag = 1 << 14;

void agree(ltfb::comm::Communicator& comm, int peer,
           std::chrono::milliseconds budget) {
  comm.send(peer, kSyncTag, ltfb::comm::Buffer{});
  // BAD: an explicit never() is an unbounded block, not a deadline.
  const ltfb::comm::Buffer ack =
      comm.recv(peer, kSyncTag, ltfb::comm::Deadline::never());
  (void)ack;

  // BAD: the survivor rendezvous must be bounded or the shrink wedges.
  ltfb::comm::Communicator survivors = comm.shrink(ltfb::comm::Deadline::never());

  // OK: a bounded budget reaches the rendezvous.
  survivors = comm.shrink(budget);
}

}  // namespace fixture
