// Analyzer fixture — never compiled. The backend API moves the send
// endpoint one level down: Backend::deliver posts an Envelope whose third
// field is the tag. The analyzer must resolve the tag through the envelope
// aggregate, so a tag family that is only ever delivered — with no
// recv/irecv/sendrecv consumer anywhere — still trips tag-pairing.
//
// expect-finding: tag-pairing

#include "comm/backend.hpp"

namespace fixture {

constexpr int kGossipTag = 1 << 15;

void gossip(ltfb::comm::Backend& backend, int me, int dst,
            const ltfb::comm::Buffer& payload, std::uint64_t flow) {
  // BAD: delivered through the backend, but nothing ever receives this tag.
  backend.deliver(me, dst,
                  ltfb::comm::detail::Envelope{me, 0, kGossipTag, payload, flow});
}

}  // namespace fixture
