// Analyzer fixture — never compiled. The first recv() blocks forever if the
// peer died: no deadline argument reaches it. The second recv() is fine even
// though no argument *names* a timeout at the call site — the analyzer must
// follow `wait_budget` back to its declaration, which is deadline-shaped.
//
// expect-finding: comm-deadline

#include "comm/communicator.hpp"

namespace fixture {

constexpr int kReqTag = 1 << 13;
constexpr int kRepTag = (1 << 13) + 1;

struct ExchangeConfig {
  std::chrono::milliseconds exchange_timeout{500};
};

void serve(ltfb::comm::Communicator& comm, int peer,
           const ExchangeConfig& cfg) {
  comm.send(peer, kReqTag, ltfb::comm::Buffer{});
  // BAD: blocking receive with no deadline — hangs forever on rank failure.
  const ltfb::comm::Buffer request = comm.recv(peer, kReqTag);

  comm.send(peer, kRepTag, request);
  // OK: wait_budget resolves to a declaration carrying a timeout.
  auto wait_budget = cfg.exchange_timeout;
  const ltfb::comm::Buffer reply = comm.recv(peer, kRepTag, wait_budget);
  (void)reply;
}

}  // namespace fixture
