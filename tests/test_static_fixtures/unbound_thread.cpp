// Analyzer fixture — never compiled. The helper thread never binds telemetry
// rank identity, so every span/counter it records lands unattributed instead
// of on the owning rank's trace track (see telemetry::RankBinding).
//
// expect-finding: rank-binding

#include <thread>

namespace fixture {

void churn() {
  for (int i = 0; i < 1000; ++i) {
  }
}

void launch_helper() {
  // BAD: no bind_rank / RankBinding / set_thread_name in the lambda or in
  // anything it calls.
  std::thread helper([] { churn(); });
  helper.join();
}

}  // namespace fixture
