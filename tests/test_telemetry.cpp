// Telemetry subsystem tests: registry semantics (idempotent registration,
// naming convention, kind conflicts), counter/gauge/timer accumulation
// hammered concurrently from the ThreadPool (exact totals — run under
// LTFB_SANITIZE=thread in CI), span nesting, disabled-mode no-ops, the
// Logger-sink metrics path, and a golden check that an end-to-end run
// produces a structurally valid Chrome trace with spans from all four
// instrumented runtime subsystems.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/gan_trainer.hpp"
#include "data/bundle.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"
#include "jag/jag_model.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace {

using ltfb::telemetry::Registry;

/// Re-arms the registry for one test and restores the quiet default after.
class TelemetryGuard {
 public:
  TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.clear_trace();
    registry.reset_metrics();
    registry.set_enabled(true);
  }
  ~TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.set_enabled(false);
    registry.clear_trace();
    registry.reset_metrics();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate exporter output without a
// third-party dependency. Numbers parse as double; no \u escapes (the
// exporters never emit them for the names this repo uses).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) {
      throw ltfb::Error("json: missing key '" + key + "'");
    }
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ltfb::Error("json: trailing characters at " + std::to_string(pos_));
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw ltfb::Error("json: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ltfb::Error(std::string("json: expected '") + c + "' at " +
                        std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          default:
            throw ltfb::Error(std::string("json: unsupported escape \\") +
                              esc);
        }
      } else {
        out.push_back(c);
      }
    }
    ++pos_;
    return out;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw ltfb::Error("json: bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw ltfb::Error("json: bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Naming and registration
// ---------------------------------------------------------------------------

TEST(TelemetryNames, ConventionIsEnforced) {
  using ltfb::telemetry::valid_metric_name;
  EXPECT_TRUE(valid_metric_name("comm/send_bytes"));
  EXPECT_TRUE(valid_metric_name("a/b/c"));
  EXPECT_TRUE(valid_metric_name("sim2/reader_0"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("noslash"));
  EXPECT_FALSE(valid_metric_name("/leading"));
  EXPECT_FALSE(valid_metric_name("trailing/"));
  EXPECT_FALSE(valid_metric_name("double//slash"));
  EXPECT_FALSE(valid_metric_name("Upper/case"));
  EXPECT_FALSE(valid_metric_name("with space/x"));
  EXPECT_FALSE(valid_metric_name("dash-es/x"));
}

TEST(TelemetryNames, BadNamesThrowOnRegistration) {
  auto& registry = Registry::instance();
  EXPECT_THROW(registry.counter("NoSlash"), ltfb::InvalidArgument);
  EXPECT_THROW(registry.gauge("bad name/x"), ltfb::InvalidArgument);
  EXPECT_THROW(registry.timer("x/"), ltfb::InvalidArgument);
}

TEST(TelemetryNames, KindConflictThrows) {
  auto& registry = Registry::instance();
  registry.counter("testnames/kind_conflict");
  EXPECT_THROW(registry.gauge("testnames/kind_conflict"),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.timer("testnames/kind_conflict"),
               ltfb::InvalidArgument);
}

TEST(TelemetryNames, RegistrationIsIdempotent) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto a = registry.counter("testnames/idempotent");
  auto b = registry.counter("testnames/idempotent");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

// ---------------------------------------------------------------------------
// Counters / gauges / timers
// ---------------------------------------------------------------------------

TEST(TelemetryMetrics, CounterAccumulates) {
  TelemetryGuard guard;
  auto counter = Registry::instance().counter("testmetrics/counter");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(TelemetryMetrics, DisabledRecordingIsANoOp) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testmetrics/disabled_counter");
  auto gauge = registry.gauge("testmetrics/disabled_gauge");
  auto timer = registry.timer("testmetrics/disabled_timer");
  registry.set_enabled(false);
  counter.add(7);
  gauge.set(3.0);
  timer.record(0.5);
  {
    LTFB_SPAN("testmetrics/disabled_span");
    LTFB_COUNTER_ADD("testmetrics/disabled_counter", 9);
  }
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(registry.span_count(), 0u);
}

TEST(TelemetryMetrics, ResetZeroesButKeepsHandles) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testmetrics/reset_counter");
  auto timer = registry.timer("testmetrics/reset_timer");
  counter.add(5);
  timer.record(0.25);
  registry.reset_metrics();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(timer.count(), 0u);
  counter.add(1);  // handle still live after reset
  timer.record(0.5);
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(timer.count(), 1u);
}

TEST(TelemetryMetrics, GaugeTracksLastAndMax) {
  TelemetryGuard guard;
  auto gauge = Registry::instance().gauge("testmetrics/gauge");
  gauge.set(2.0);
  gauge.set(9.0);
  gauge.set(4.0);
  EXPECT_EQ(gauge.value(), 4.0);
  EXPECT_EQ(gauge.max(), 9.0);
}

TEST(TelemetryMetrics, TimerSnapshotStats) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto timer = registry.timer("testmetrics/timer");
  timer.record(0.001);
  timer.record(0.002);
  timer.record(0.004);
  const auto snapshot = registry.snapshot();
  const ltfb::telemetry::TimerStat* stat = nullptr;
  for (const auto& t : snapshot.timers) {
    if (t.name == "testmetrics/timer") stat = &t;
  }
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 3u);
  EXPECT_NEAR(stat->total_s, 0.007, 1e-9);
  EXPECT_NEAR(stat->min_s, 0.001, 1e-9);
  EXPECT_NEAR(stat->max_s, 0.004, 1e-9);
  EXPECT_NEAR(stat->mean_s, 0.007 / 3.0, 1e-9);
  // Percentiles come from log2 buckets: upper bounds, monotone.
  EXPECT_GE(stat->p50_s, stat->min_s);
  EXPECT_LE(stat->p50_s, stat->p95_s);
}

TEST(TelemetryMetrics, ScopedTimerRecordsElapsed) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto timer = registry.timer("testmetrics/scoped");
  { ltfb::telemetry::ScopedTimer scope(timer); }
  EXPECT_EQ(timer.count(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (exact totals, TSan-clean)
// ---------------------------------------------------------------------------

TEST(TelemetryConcurrency, ThreadPoolHammerExactCounts) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testconc/hits");
  auto timer = registry.timer("testconc/latency");
  constexpr int kTasks = 64;
  constexpr int kIters = 500;
  {
    ltfb::util::ThreadPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([counter, timer]() mutable {
        for (int i = 0; i < kIters; ++i) {
          counter.add(1);
          timer.record(1e-6);
          LTFB_COUNTER_ADD("testconc/macro_hits", 1);
          LTFB_SPAN("testconc/span");
        }
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(timer.count(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(registry.counter("testconc/macro_hits").value(),
            static_cast<std::uint64_t>(kTasks) * kIters);
  // One span per iteration plus the pool's own threadpool/task spans.
  EXPECT_GE(registry.span_count(),
            static_cast<std::size_t>(kTasks) * kIters);
  EXPECT_EQ(registry.dropped_spans(), 0u);
}

TEST(TelemetryConcurrency, GaugeMaxIsMonotone) {
  TelemetryGuard guard;
  auto gauge = Registry::instance().gauge("testconc/gauge");
  {
    ltfb::util::ThreadPool pool(4);
    for (int t = 1; t <= 32; ++t) {
      pool.submit([gauge, t]() mutable { gauge.set(t); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(gauge.max(), 32.0);
}

// ---------------------------------------------------------------------------
// Spans and trace export
// ---------------------------------------------------------------------------

TEST(TelemetrySpans, NestedSpansAreContained) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  {
    LTFB_SPAN("testspan/outer");
    LTFB_SPAN("testspan/inner");
  }
  EXPECT_EQ(registry.span_count(), 2u);

  const std::string json = registry.trace_json();
  const JsonValue trace = JsonParser(json).parse();
  const auto& events = trace.at("traceEvents").array;
  double outer_start = -1.0, outer_end = -1.0;
  double inner_start = -1.0, inner_end = -1.0;
  double outer_tid = -1.0, inner_tid = -2.0;
  for (const auto& event : events) {
    if (event.at("ph").string != "X") continue;
    const std::string& name = event.at("name").string;
    const double ts = event.at("ts").number;
    const double dur = event.at("dur").number;
    if (name == "testspan/outer") {
      outer_start = ts;
      outer_end = ts + dur;
      outer_tid = event.at("tid").number;
    } else if (name == "testspan/inner") {
      inner_start = ts;
      inner_end = ts + dur;
      inner_tid = event.at("tid").number;
    }
  }
  ASSERT_GE(outer_start, 0.0);
  ASSERT_GE(inner_start, 0.0);
  EXPECT_EQ(outer_tid, inner_tid);
  EXPECT_LE(outer_start, inner_start);
  EXPECT_GE(outer_end, inner_end);
}

TEST(TelemetrySpans, SimSpansLandOnVirtualTimeTrack) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.record_sim_span("testsim/reader", 1.5, 2.0, 3);
  EXPECT_EQ(registry.sim_span_count(), 1u);

  const JsonValue trace = JsonParser(registry.trace_json()).parse();
  bool found = false;
  for (const auto& event : trace.at("traceEvents").array) {
    if (event.at("ph").string == "X" &&
        event.at("name").string == "testsim/reader") {
      found = true;
      EXPECT_EQ(event.at("pid").number, 2.0);  // virtual-time process
      EXPECT_EQ(event.at("tid").number, 3.0);
      EXPECT_NEAR(event.at("ts").number, 1.5e6, 1.0);  // seconds -> us
      EXPECT_NEAR(event.at("dur").number, 2.0e6, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetrySpans, SimSpanValidatesArguments) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  EXPECT_THROW(registry.record_sim_span("BadName", 0.0, 1.0, 0),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.record_sim_span("testsim/x", -1.0, 1.0, 0),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.record_sim_span("testsim/x", 0.0, -1.0, 0),
               ltfb::InvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end golden trace: all four runtime subsystems in one trace.json
// ---------------------------------------------------------------------------

TEST(TelemetryTrace, EndToEndChromeTraceFromFourSubsystems) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();

  // comm + datastore: two ranks preload a bundled catalog and fetch across
  // the rank boundary (collectives inside build_directory hit comm spans).
  const auto bundle_dir =
      std::filesystem::temp_directory_path() / "ltfb_telemetry_trace";
  std::filesystem::remove_all(bundle_dir);
  ltfb::data::SampleSchema schema;
  schema.input_width = 5;
  schema.scalar_width = 15;
  schema.image_width = 6;
  std::vector<ltfb::data::Sample> bundle_samples;
  for (ltfb::data::SampleId id = 0; id < 24; ++id) {
    ltfb::data::Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, static_cast<float>(id));
    sample.images.assign(6, static_cast<float>(id));
    bundle_samples.push_back(std::move(sample));
  }
  const auto paths =
      ltfb::data::write_bundle_set(bundle_dir, schema, bundle_samples, 6);
  const ltfb::datastore::BundleCatalog catalog(paths);
  ltfb::comm::World::run(2, [&](ltfb::comm::Communicator& comm) {
    ltfb::datastore::DataStore store(
        comm, &catalog, ltfb::datastore::PopulateMode::Preloaded,
        /*capacity_bytes_per_rank=*/0, {});
    store.preload();
    std::vector<ltfb::data::SampleId> wanted{0, 7, 13, 23};
    const auto samples = store.fetch(wanted);
    ASSERT_EQ(samples.size(), wanted.size());
    float one[1] = {1.0f};
    comm.allreduce(std::span<float>(one, 1), ltfb::comm::ReduceOp::Sum);
  });

  // threadpool: a task span.
  {
    ltfb::util::ThreadPool pool(2);
    pool.submit([] {}).get();
    pool.wait_idle();
  }

  // trainer: a couple of real (tiny) GAN steps.
  {
    ltfb::jag::JagConfig jag_config;
    jag_config.image_size = 4;
    jag_config.num_views = 1;
    jag_config.num_channels = 1;
    const ltfb::jag::JagModel jag(jag_config);
    const auto dataset = ltfb::data::generate_jag_dataset(jag, 24, 515);
    ltfb::gan::CycleGanConfig model_config;
    model_config.image_width = jag_config.image_features();
    model_config.latent_width = 4;
    model_config.encoder_hidden = {8};
    model_config.decoder_hidden = {8};
    model_config.forward_hidden = {8};
    model_config.inverse_hidden = {8};
    model_config.discriminator_hidden = {8};
    std::vector<std::size_t> view(dataset.size());
    for (std::size_t i = 0; i < view.size(); ++i) view[i] = i;
    ltfb::core::GanTrainer trainer(0, model_config, dataset, view, view,
                                   /*batch_size=*/8, 516);
    trainer.train_steps(2);
  }

  const std::string path =
      (::testing::TempDir().empty() ? std::string(".")
                                    : ::testing::TempDir()) +
      "/ltfb_test_trace.json";
  ASSERT_TRUE(registry.write_trace_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();

  // Golden structure: parses as JSON, has traceEvents, every event carries
  // the Chrome-required keys, complete events have non-negative ts/dur.
  const JsonValue trace = JsonParser(buffer.str()).parse();
  ASSERT_TRUE(trace.has("traceEvents"));
  const auto& events = trace.at("traceEvents").array;
  ASSERT_FALSE(events.empty());
  std::set<std::string> subsystems;
  bool saw_process_metadata = false;
  for (const auto& event : events) {
    ASSERT_TRUE(event.has("ph"));
    ASSERT_TRUE(event.has("name"));
    ASSERT_TRUE(event.has("pid"));
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      saw_process_metadata |= event.at("name").string == "process_name";
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_TRUE(event.has("tid"));
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("dur"));
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("dur").number, 0.0);
    const std::string& name = event.at("name").string;
    subsystems.insert(name.substr(0, name.find('/')));
  }
  EXPECT_TRUE(saw_process_metadata);
  EXPECT_TRUE(subsystems.count("comm")) << "no comm spans in trace";
  EXPECT_TRUE(subsystems.count("datastore")) << "no datastore spans";
  EXPECT_TRUE(subsystems.count("threadpool")) << "no threadpool spans";
  EXPECT_TRUE(subsystems.count("trainer")) << "no trainer spans";
}

// ---------------------------------------------------------------------------
// Metrics JSON and the Logger sink path
// ---------------------------------------------------------------------------

TEST(TelemetryExport, MetricsJsonRoundTrips) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.counter("testexport/hits").add(3);
  registry.gauge("testexport/depth").set(2.5);
  registry.timer("testexport/lat").record(0.5);

  const JsonValue metrics = JsonParser(registry.metrics_json()).parse();
  EXPECT_EQ(metrics.at("counters").at("testexport/hits").number, 3.0);
  EXPECT_EQ(metrics.at("gauges").at("testexport/depth").at("value").number,
            2.5);
  const auto& timer = metrics.at("timers").at("testexport/lat");
  EXPECT_EQ(timer.at("count").number, 1.0);
  EXPECT_NEAR(timer.at("total_s").number, 0.5, 1e-9);
}

TEST(TelemetryExport, LogMetricsFlowsThroughLoggerSinks) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.counter("testexport/sinkhits").add(7);

  auto& logger = ltfb::util::Logger::instance();
  const auto saved_level = logger.level();
  logger.set_level(ltfb::util::LogLevel::Info);
  std::vector<std::string> captured;
  const int sink_id =
      logger.add_sink([&captured](const ltfb::util::LogRecord& record) {
        if (record.component == "telemetry") {
          captured.emplace_back(record.message);
        }
      });
  registry.log_metrics();
  logger.remove_sink(sink_id);
  logger.set_level(saved_level);

  bool found = false;
  for (const auto& line : captured) {
    if (line.find("testexport/sinkhits") != std::string::npos &&
        line.find('7') != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "metrics dump never reached the installed sink";
}

}  // namespace
