// Telemetry subsystem tests: registry semantics (idempotent registration,
// naming convention, kind conflicts), counter/gauge/timer accumulation
// hammered concurrently from the ThreadPool (exact totals — run under
// LTFB_SANITIZE=thread in CI), span nesting, disabled-mode no-ops, the
// Logger-sink metrics path, rank attribution (per-rank metric scopes,
// per-rank trace pids, thread_name metadata, flow events), and golden
// checks that end-to-end runs produce structurally valid Chrome traces.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/gan_trainer.hpp"
#include "data/bundle.hpp"
#include "data/dataset.hpp"
#include "datastore/data_store.hpp"
#include "jag/jag_model.hpp"
#include "minijson.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace {

using ltfb::telemetry::Registry;
using testjson::JsonParser;
using testjson::JsonValue;

/// Re-arms the registry for one test and restores the quiet default after.
class TelemetryGuard {
 public:
  TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.clear_trace();
    registry.reset_metrics();
    registry.set_enabled(true);
  }
  ~TelemetryGuard() {
    auto& registry = Registry::instance();
    registry.set_enabled(false);
    registry.clear_trace();
    registry.reset_metrics();
  }
};

// ---------------------------------------------------------------------------
// Naming and registration
// ---------------------------------------------------------------------------

TEST(TelemetryNames, ConventionIsEnforced) {
  using ltfb::telemetry::valid_metric_name;
  EXPECT_TRUE(valid_metric_name("comm/send_bytes"));
  EXPECT_TRUE(valid_metric_name("a/b/c"));
  EXPECT_TRUE(valid_metric_name("sim2/reader_0"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("noslash"));
  EXPECT_FALSE(valid_metric_name("/leading"));
  EXPECT_FALSE(valid_metric_name("trailing/"));
  EXPECT_FALSE(valid_metric_name("double//slash"));
  EXPECT_FALSE(valid_metric_name("Upper/case"));
  EXPECT_FALSE(valid_metric_name("with space/x"));
  EXPECT_FALSE(valid_metric_name("dash-es/x"));
}

TEST(TelemetryNames, BadNamesThrowOnRegistration) {
  auto& registry = Registry::instance();
  EXPECT_THROW(registry.counter("NoSlash"), ltfb::InvalidArgument);
  EXPECT_THROW(registry.gauge("bad name/x"), ltfb::InvalidArgument);
  EXPECT_THROW(registry.timer("x/"), ltfb::InvalidArgument);
}

TEST(TelemetryNames, KindConflictThrows) {
  auto& registry = Registry::instance();
  registry.counter("testnames/kind_conflict");
  EXPECT_THROW(registry.gauge("testnames/kind_conflict"),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.timer("testnames/kind_conflict"),
               ltfb::InvalidArgument);
}

TEST(TelemetryNames, RegistrationIsIdempotent) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto a = registry.counter("testnames/idempotent");
  auto b = registry.counter("testnames/idempotent");
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

// ---------------------------------------------------------------------------
// Counters / gauges / timers
// ---------------------------------------------------------------------------

TEST(TelemetryMetrics, CounterAccumulates) {
  TelemetryGuard guard;
  auto counter = Registry::instance().counter("testmetrics/counter");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(TelemetryMetrics, DisabledRecordingIsANoOp) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testmetrics/disabled_counter");
  auto gauge = registry.gauge("testmetrics/disabled_gauge");
  auto timer = registry.timer("testmetrics/disabled_timer");
  registry.set_enabled(false);
  counter.add(7);
  gauge.set(3.0);
  timer.record(0.5);
  {
    LTFB_SPAN("testmetrics/disabled_span");
    LTFB_COUNTER_ADD("testmetrics/disabled_counter", 9);
  }
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(timer.count(), 0u);
  EXPECT_EQ(registry.span_count(), 0u);
}

TEST(TelemetryMetrics, ResetZeroesButKeepsHandles) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testmetrics/reset_counter");
  auto timer = registry.timer("testmetrics/reset_timer");
  counter.add(5);
  timer.record(0.25);
  registry.reset_metrics();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(timer.count(), 0u);
  counter.add(1);  // handle still live after reset
  timer.record(0.5);
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(timer.count(), 1u);
}

TEST(TelemetryMetrics, GaugeTracksLastAndMax) {
  TelemetryGuard guard;
  auto gauge = Registry::instance().gauge("testmetrics/gauge");
  gauge.set(2.0);
  gauge.set(9.0);
  gauge.set(4.0);
  EXPECT_EQ(gauge.value(), 4.0);
  EXPECT_EQ(gauge.max(), 9.0);
}

TEST(TelemetryMetrics, TimerSnapshotStats) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto timer = registry.timer("testmetrics/timer");
  timer.record(0.001);
  timer.record(0.002);
  timer.record(0.004);
  const auto snapshot = registry.snapshot();
  const ltfb::telemetry::TimerStat* stat = nullptr;
  for (const auto& t : snapshot.timers) {
    if (t.name == "testmetrics/timer") stat = &t;
  }
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 3u);
  EXPECT_NEAR(stat->total_s, 0.007, 1e-9);
  EXPECT_NEAR(stat->min_s, 0.001, 1e-9);
  EXPECT_NEAR(stat->max_s, 0.004, 1e-9);
  EXPECT_NEAR(stat->mean_s, 0.007 / 3.0, 1e-9);
  // Percentiles come from log2 buckets: upper bounds, monotone.
  EXPECT_GE(stat->p50_s, stat->min_s);
  EXPECT_LE(stat->p50_s, stat->p95_s);
}

TEST(TelemetryMetrics, ScopedTimerRecordsElapsed) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto timer = registry.timer("testmetrics/scoped");
  { ltfb::telemetry::ScopedTimer scope(timer); }
  EXPECT_EQ(timer.count(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (exact totals, TSan-clean)
// ---------------------------------------------------------------------------

TEST(TelemetryConcurrency, ThreadPoolHammerExactCounts) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testconc/hits");
  auto timer = registry.timer("testconc/latency");
  constexpr int kTasks = 64;
  constexpr int kIters = 500;
  {
    ltfb::util::ThreadPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([counter, timer]() mutable {
        for (int i = 0; i < kIters; ++i) {
          counter.add(1);
          timer.record(1e-6);
          LTFB_COUNTER_ADD("testconc/macro_hits", 1);
          LTFB_SPAN("testconc/span");
        }
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(timer.count(), static_cast<std::uint64_t>(kTasks) * kIters);
  EXPECT_EQ(registry.counter("testconc/macro_hits").value(),
            static_cast<std::uint64_t>(kTasks) * kIters);
  // One span per iteration plus the pool's own threadpool/task spans.
  EXPECT_GE(registry.span_count(),
            static_cast<std::size_t>(kTasks) * kIters);
  EXPECT_EQ(registry.dropped_spans(), 0u);
}

TEST(TelemetryConcurrency, GaugeMaxIsMonotone) {
  TelemetryGuard guard;
  auto gauge = Registry::instance().gauge("testconc/gauge");
  {
    ltfb::util::ThreadPool pool(4);
    for (int t = 1; t <= 32; ++t) {
      pool.submit([gauge, t]() mutable { gauge.set(t); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(gauge.max(), 32.0);
}

// ---------------------------------------------------------------------------
// Spans and trace export
// ---------------------------------------------------------------------------

TEST(TelemetrySpans, NestedSpansAreContained) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  {
    LTFB_SPAN("testspan/outer");
    LTFB_SPAN("testspan/inner");
  }
  EXPECT_EQ(registry.span_count(), 2u);

  const std::string json = registry.trace_json();
  const JsonValue trace = JsonParser(json).parse();
  const auto& events = trace.at("traceEvents").array;
  double outer_start = -1.0, outer_end = -1.0;
  double inner_start = -1.0, inner_end = -1.0;
  double outer_tid = -1.0, inner_tid = -2.0;
  for (const auto& event : events) {
    if (event.at("ph").string != "X") continue;
    const std::string& name = event.at("name").string;
    const double ts = event.at("ts").number;
    const double dur = event.at("dur").number;
    if (name == "testspan/outer") {
      outer_start = ts;
      outer_end = ts + dur;
      outer_tid = event.at("tid").number;
    } else if (name == "testspan/inner") {
      inner_start = ts;
      inner_end = ts + dur;
      inner_tid = event.at("tid").number;
    }
  }
  ASSERT_GE(outer_start, 0.0);
  ASSERT_GE(inner_start, 0.0);
  EXPECT_EQ(outer_tid, inner_tid);
  EXPECT_LE(outer_start, inner_start);
  EXPECT_GE(outer_end, inner_end);
}

TEST(TelemetrySpans, SimSpansLandOnVirtualTimeTrack) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.record_sim_span("testsim/reader", 1.5, 2.0, 3);
  EXPECT_EQ(registry.sim_span_count(), 1u);

  const JsonValue trace = JsonParser(registry.trace_json()).parse();
  bool found = false;
  for (const auto& event : trace.at("traceEvents").array) {
    if (event.at("ph").string == "X" &&
        event.at("name").string == "testsim/reader") {
      found = true;
      EXPECT_EQ(event.at("pid").number, 2.0);  // virtual-time process
      EXPECT_EQ(event.at("tid").number, 3.0);
      EXPECT_NEAR(event.at("ts").number, 1.5e6, 1.0);  // seconds -> us
      EXPECT_NEAR(event.at("dur").number, 2.0e6, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetrySpans, SimSpanValidatesArguments) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  EXPECT_THROW(registry.record_sim_span("BadName", 0.0, 1.0, 0),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.record_sim_span("testsim/x", -1.0, 1.0, 0),
               ltfb::InvalidArgument);
  EXPECT_THROW(registry.record_sim_span("testsim/x", 0.0, -1.0, 0),
               ltfb::InvalidArgument);
}

// ---------------------------------------------------------------------------
// End-to-end golden trace: all four runtime subsystems in one trace.json
// ---------------------------------------------------------------------------

TEST(TelemetryTrace, EndToEndChromeTraceFromFourSubsystems) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();

  // comm + datastore: two ranks preload a bundled catalog and fetch across
  // the rank boundary (collectives inside build_directory hit comm spans).
  const auto bundle_dir =
      std::filesystem::temp_directory_path() / "ltfb_telemetry_trace";
  std::filesystem::remove_all(bundle_dir);
  ltfb::data::SampleSchema schema;
  schema.input_width = 5;
  schema.scalar_width = 15;
  schema.image_width = 6;
  std::vector<ltfb::data::Sample> bundle_samples;
  for (ltfb::data::SampleId id = 0; id < 24; ++id) {
    ltfb::data::Sample sample;
    sample.id = id;
    sample.input.assign(5, static_cast<float>(id));
    sample.scalars.assign(15, static_cast<float>(id));
    sample.images.assign(6, static_cast<float>(id));
    bundle_samples.push_back(std::move(sample));
  }
  const auto paths =
      ltfb::data::write_bundle_set(bundle_dir, schema, bundle_samples, 6);
  const ltfb::datastore::BundleCatalog catalog(paths);
  ltfb::comm::World::run(2, [&](ltfb::comm::Communicator& comm) {
    ltfb::datastore::DataStore store(
        comm, &catalog, ltfb::datastore::PopulateMode::Preloaded,
        /*capacity_bytes_per_rank=*/0, {});
    store.preload();
    std::vector<ltfb::data::SampleId> wanted{0, 7, 13, 23};
    const auto samples = store.fetch(wanted);
    ASSERT_EQ(samples.size(), wanted.size());
    float one[1] = {1.0f};
    comm.allreduce(std::span<float>(one, 1), ltfb::comm::ReduceOp::Sum);
  });

  // threadpool: a task span.
  {
    ltfb::util::ThreadPool pool(2);
    pool.submit([] {}).get();
    pool.wait_idle();
  }

  // trainer: a couple of real (tiny) GAN steps.
  {
    ltfb::jag::JagConfig jag_config;
    jag_config.image_size = 4;
    jag_config.num_views = 1;
    jag_config.num_channels = 1;
    const ltfb::jag::JagModel jag(jag_config);
    const auto dataset = ltfb::data::generate_jag_dataset(jag, 24, 515);
    ltfb::gan::CycleGanConfig model_config;
    model_config.image_width = jag_config.image_features();
    model_config.latent_width = 4;
    model_config.encoder_hidden = {8};
    model_config.decoder_hidden = {8};
    model_config.forward_hidden = {8};
    model_config.inverse_hidden = {8};
    model_config.discriminator_hidden = {8};
    std::vector<std::size_t> view(dataset.size());
    for (std::size_t i = 0; i < view.size(); ++i) view[i] = i;
    ltfb::core::GanTrainer trainer(0, model_config, dataset, view, view,
                                   /*batch_size=*/8, 516);
    trainer.train_steps(2);
  }

  const std::string path =
      (::testing::TempDir().empty() ? std::string(".")
                                    : ::testing::TempDir()) +
      "/ltfb_test_trace.json";
  ASSERT_TRUE(registry.write_trace_json(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();

  // Golden structure: parses as JSON, has traceEvents, every event carries
  // the Chrome-required keys, complete events have non-negative ts/dur.
  const JsonValue trace = JsonParser(buffer.str()).parse();
  ASSERT_TRUE(trace.has("traceEvents"));
  const auto& events = trace.at("traceEvents").array;
  ASSERT_FALSE(events.empty());
  std::set<std::string> subsystems;
  bool saw_process_metadata = false;
  for (const auto& event : events) {
    ASSERT_TRUE(event.has("ph"));
    ASSERT_TRUE(event.has("name"));
    ASSERT_TRUE(event.has("pid"));
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      saw_process_metadata |= event.at("name").string == "process_name";
      continue;
    }
    if (ph == "s" || ph == "f") {
      // Cross-rank flow endpoints from the comm layer's correlation ids.
      ASSERT_TRUE(event.has("id"));
      ASSERT_TRUE(event.has("ts"));
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_TRUE(event.has("tid"));
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("dur"));
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("dur").number, 0.0);
    const std::string& name = event.at("name").string;
    subsystems.insert(name.substr(0, name.find('/')));
  }
  EXPECT_TRUE(saw_process_metadata);
  EXPECT_TRUE(subsystems.count("comm")) << "no comm spans in trace";
  EXPECT_TRUE(subsystems.count("datastore")) << "no datastore spans";
  EXPECT_TRUE(subsystems.count("threadpool")) << "no threadpool spans";
  EXPECT_TRUE(subsystems.count("trainer")) << "no trainer spans";
}

// ---------------------------------------------------------------------------
// Rank attribution: per-rank metric scopes, thread names, rank trace pids,
// cross-rank flow correlation
// ---------------------------------------------------------------------------

TEST(TelemetryRank, RankScopedMetricsLandInBoundScope) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto counter = registry.counter("testrank/hits");
  auto gauge = registry.gauge("testrank/depth");
  auto timer = registry.timer("testrank/lat");
  {
    const ltfb::telemetry::RankBinding bind(3);
    counter.add(5);
    gauge.set(2.5);
    timer.record(0.25);
  }
  counter.add(2);  // unbound: global only

  const auto rank3 = registry.snapshot_rank(3);
  const auto rank0 = registry.snapshot_rank(0);
  auto find_counter = [](const ltfb::telemetry::MetricsSnapshot& snap,
                         const std::string& name) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  EXPECT_EQ(find_counter(rank3, "testrank/hits"), 5u);
  EXPECT_EQ(find_counter(rank0, "testrank/hits"), 0u);
  EXPECT_EQ(counter.value(), 7u);  // global scope sees both
  bool timer_found = false;
  for (const auto& t : rank3.timers) {
    if (t.name != "testrank/lat") continue;
    timer_found = true;
    EXPECT_EQ(t.count, 1u);
    EXPECT_NEAR(t.total_s, 0.25, 1e-9);
  }
  EXPECT_TRUE(timer_found);
  bool gauge_found = false;
  for (const auto& g : rank3.gauges) {
    if (g.name != "testrank/depth") continue;
    gauge_found = true;
    EXPECT_EQ(g.value, 2.5);
    EXPECT_EQ(g.sets, 1u);
  }
  EXPECT_TRUE(gauge_found);
}

TEST(TelemetryRank, RankBindingRestoresPreviousBinding) {
  TelemetryGuard guard;
  ltfb::telemetry::bind_rank(2);
  {
    const ltfb::telemetry::RankBinding inner(7);
    EXPECT_EQ(ltfb::telemetry::bound_rank(), 7);
  }
  EXPECT_EQ(ltfb::telemetry::bound_rank(), 2);
  ltfb::telemetry::bind_rank(-1);
  EXPECT_EQ(ltfb::telemetry::bound_rank(), -1);
}

TEST(TelemetryRank, BindRankValidatesRange) {
  EXPECT_THROW(ltfb::telemetry::bind_rank(-2), ltfb::InvalidArgument);
  EXPECT_THROW(
      ltfb::telemetry::bind_rank(ltfb::telemetry::detail::kMaxRankScopes),
      ltfb::InvalidArgument);
}

TEST(TelemetryRank, SetThreadNameAppearsInTraceMetadata) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  // A named worker thread (pool workers name themselves the same way).
  std::thread worker([] {
    ltfb::telemetry::set_thread_name("testrank/worker");
    LTFB_SPAN("testrank/work");
  });
  worker.join();

  const JsonValue trace = JsonParser(registry.trace_json()).parse();
  bool named = false;
  for (const auto& event : trace.at("traceEvents").array) {
    if (event.at("ph").string == "M" &&
        event.at("name").string == "thread_name" &&
        event.at("args").at("name").string == "testrank/worker") {
      named = true;
    }
  }
  EXPECT_TRUE(named) << "thread_name metadata missing from trace";
}

// Regression: write_trace_json used to stash a pointer to the buffer's
// thread_name and dereference it after releasing the buffer lock, racing a
// concurrent set_thread_name. The exporter copies the name under the lock
// now; renaming mid-export must yield a parseable trace every round (run
// under LTFB_SANITIZE=thread in CI to make the old race fatal).
TEST(TelemetryRank, ThreadRenameDuringTraceExportIsSafe) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  std::atomic<bool> stop{false};
  std::thread renamer([&stop] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ltfb::telemetry::set_thread_name(
          i % 2 == 0 ? "stress/alpha" : "stress/beta_much_longer_name");
      LTFB_SPAN("stress/tick");
      ++i;
    }
  });
  for (int round = 0; round < 20; ++round) {
    const std::string json = registry.trace_json();
    EXPECT_FALSE(json.empty());
  }
  stop.store(true, std::memory_order_release);
  renamer.join();
  const JsonValue trace = JsonParser(registry.trace_json()).parse();
  EXPECT_FALSE(trace.at("traceEvents").array.empty());
}

TEST(TelemetryRank, MultiRankTraceGoldenWithFlows) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();

  // Two ranks, one message each way: World::run_ranks binds the rank
  // scopes; the comm layer stamps flow correlation ids on both endpoints.
  ltfb::comm::World::run(2, [](ltfb::comm::Communicator& comm) {
    LTFB_SPAN("testrank/rank_main");
    const ltfb::comm::Buffer payload{1, 2, 3};
    if (comm.rank() == 0) {
      comm.send(1, 42, payload);
      (void)comm.recv(1, 43);
    } else {
      (void)comm.recv(0, 42);
      comm.send(0, 43, payload);
    }
  });

  const JsonValue trace = JsonParser(registry.trace_json()).parse();
  const auto& events = trace.at("traceEvents").array;

  // One pid per rank, with "rank N" process metadata.
  std::map<double, std::string> process_names;
  std::set<double> span_pids;
  std::map<std::string, std::vector<const JsonValue*>> flow_starts;
  std::map<std::string, std::vector<const JsonValue*>> flow_finishes;
  for (const auto& event : events) {
    const std::string& ph = event.at("ph").string;
    if (ph == "M" && event.at("name").string == "process_name") {
      process_names[event.at("pid").number] =
          event.at("args").at("name").string;
    } else if (ph == "X") {
      span_pids.insert(event.at("pid").number);
    } else if (ph == "s") {
      flow_starts[event.at("id").string].push_back(&event);
    } else if (ph == "f") {
      flow_finishes[event.at("id").string].push_back(&event);
      EXPECT_EQ(event.at("bp").string, "e");
    }
  }
  const double pid0 = ltfb::telemetry::kRankPidBase + 0;
  const double pid1 = ltfb::telemetry::kRankPidBase + 1;
  EXPECT_TRUE(span_pids.count(pid0)) << "no spans on rank 0's pid";
  EXPECT_TRUE(span_pids.count(pid1)) << "no spans on rank 1's pid";
  ASSERT_TRUE(process_names.count(pid0));
  ASSERT_TRUE(process_names.count(pid1));
  EXPECT_EQ(process_names[pid0], "rank 0");
  EXPECT_EQ(process_names[pid1], "rank 1");

  // At least one matched send->recv flow pair, crossing rank pids, with
  // the receive at or after the send.
  std::size_t matched = 0;
  for (const auto& [id, starts] : flow_starts) {
    const auto it = flow_finishes.find(id);
    if (it == flow_finishes.end()) continue;
    ASSERT_EQ(starts.size(), 1u) << "duplicate flow id " << id;
    ASSERT_EQ(it->second.size(), 1u) << "duplicate flow id " << id;
    const JsonValue& start = *starts.front();
    const JsonValue& finish = *it->second.front();
    EXPECT_NE(start.at("pid").number, finish.at("pid").number);
    EXPECT_GE(finish.at("ts").number, start.at("ts").number);
    ++matched;
  }
  EXPECT_GE(matched, 2u) << "expected both messages to produce flow pairs";
  EXPECT_GE(registry.flow_count(), 4u);  // two s + two f endpoints
}

TEST(TelemetryRank, FlowIdsAreDeterministicPerDirection) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto run_once = [&] {
    registry.clear_trace();
    ltfb::comm::World::run(2, [](ltfb::comm::Communicator& comm) {
      const ltfb::comm::Buffer payload{9};
      if (comm.rank() == 0) {
        comm.send(1, 7, payload);
        comm.send(1, 7, payload);
      } else {
        (void)comm.recv(0, 7);
        (void)comm.recv(0, 7);
      }
    });
    std::set<std::string> ids;
    const JsonValue trace = JsonParser(registry.trace_json()).parse();
    for (const auto& event : trace.at("traceEvents").array) {
      if (event.at("ph").string == "s") ids.insert(event.at("id").string);
    }
    return ids;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.size(), 2u) << "per-pair sequence should split the ids";
  // Same (comm, tag, src, dst, seq) inputs on a fresh world -> same ids:
  // both sides of a real wire could derive them independently.
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Metrics JSON and the Logger sink path
// ---------------------------------------------------------------------------

TEST(TelemetryExport, MetricsJsonRoundTrips) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.counter("testexport/hits").add(3);
  registry.gauge("testexport/depth").set(2.5);
  registry.timer("testexport/lat").record(0.5);

  const JsonValue metrics = JsonParser(registry.metrics_json()).parse();
  EXPECT_EQ(metrics.at("counters").at("testexport/hits").number, 3.0);
  EXPECT_EQ(metrics.at("gauges").at("testexport/depth").at("value").number,
            2.5);
  const auto& timer = metrics.at("timers").at("testexport/lat");
  EXPECT_EQ(timer.at("count").number, 1.0);
  EXPECT_NEAR(timer.at("total_s").number, 0.5, 1e-9);
}

TEST(TelemetryExport, TimerJsonCarriesP99AndRate) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  auto timer = registry.timer("testexport/p99_timer");
  for (int i = 0; i < 100; ++i) timer.record(0.001);
  timer.record(0.5);  // tail sample

  const JsonValue metrics = JsonParser(registry.metrics_json()).parse();
  const auto& stat = metrics.at("timers").at("testexport/p99_timer");
  ASSERT_TRUE(stat.has("p99_s"));
  ASSERT_TRUE(stat.has("rate_per_s"));
  // p99 is a log2-bucket upper bound: monotone over lower percentiles and
  // at least the bulk latency.
  EXPECT_GE(stat.at("p99_s").number, stat.at("p95_s").number);
  EXPECT_GE(stat.at("p99_s").number, 0.001);
  // 101 records within the window since reset_metrics: a positive rate.
  EXPECT_GT(stat.at("rate_per_s").number, 0.0);

  const auto snapshot = registry.snapshot();
  for (const auto& t : snapshot.timers) {
    if (t.name != "testexport/p99_timer") continue;
    EXPECT_GE(t.p99_s, t.p95_s);
    EXPECT_GT(t.rate_per_s, 0.0);
  }
}

TEST(TelemetryExport, JsonEscapeControlCharsAndNonAscii) {
  using ltfb::telemetry::json_escape;
  // Named escapes.
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  // Unnamed control characters become \u00XX.
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("\x00", 1)), "\\u0000");
  EXPECT_EQ(json_escape("\x1f"), "\\u001f");
  // Non-ASCII UTF-8 passes through byte-for-byte (valid JSON as long as
  // the document stays UTF-8, which ofstream preserves).
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");

  // Round-trip: a JSON document built with json_escape parses back to the
  // original string, including \uXXXX decoding in the parser.
  const std::string nasty = "tab\t quote\" back\\ bell\x07 utf8 \xc3\xa9";
  const std::string doc = "{\"k\": \"" + json_escape(nasty) + "\"}";
  const JsonValue parsed = JsonParser(doc).parse();
  EXPECT_EQ(parsed.at("k").string, nasty);
}

TEST(TelemetryExport, LogMetricsFlowsThroughLoggerSinks) {
  TelemetryGuard guard;
  auto& registry = Registry::instance();
  registry.counter("testexport/sinkhits").add(7);

  auto& logger = ltfb::util::Logger::instance();
  const auto saved_level = logger.level();
  logger.set_level(ltfb::util::LogLevel::Info);
  std::vector<std::string> captured;
  const int sink_id =
      logger.add_sink([&captured](const ltfb::util::LogRecord& record) {
        if (record.component == "telemetry") {
          captured.emplace_back(record.message);
        }
      });
  registry.log_metrics();
  logger.remove_sink(sink_id);
  logger.set_level(saved_level);

  bool found = false;
  for (const auto& line : captured) {
    if (line.find("testexport/sinkhits") != std::string::npos &&
        line.find('7') != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "metrics dump never reached the installed sink";
}

}  // namespace
