// Minimal JSON parser shared by test suites — just enough to validate the
// telemetry exporters' output (trace JSON, metrics JSON, the aggregator's
// metrics timeseries) without a third-party dependency. Numbers parse as
// double; strings support the full JSON escape set including \uXXXX
// (decoded to UTF-8; surrogate pairs are not combined — the exporters
// never emit code points above the BMP).
#pragma once

#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace testjson {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) {
      throw ltfb::Error("json: missing key '" + key + "'");
    }
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw ltfb::Error("json: trailing characters at " +
                        std::to_string(pos_));
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw ltfb::Error("json: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ltfb::Error(std::string("json: expected '") + c + "' at " +
                        std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned hex_digit(char c) {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw ltfb::Error("json: bad hex digit in \\u escape");
  }

  void append_codepoint(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case '/': out.push_back('/'); break;
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw ltfb::Error("json: truncated \\u escape");
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              cp = cp * 16 + hex_digit(text_[pos_++]);
            }
            append_codepoint(out, cp);
            break;
          }
          default:
            throw ltfb::Error(std::string("json: unsupported escape \\") +
                              esc);
        }
      } else {
        out.push_back(c);
      }
    }
    ++pos_;
    return out;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw ltfb::Error("json: bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw ltfb::Error("json: bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace testjson
