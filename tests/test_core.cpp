// Tests for the LTFB core: tournament pairing, the lockstep driver's
// adoption semantics, the K-independent baseline, and the paper's headline
// algorithmic property (LTFB >= K-independent at equal budgets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <string>

#include "core/ltfb.hpp"
#include "core/population.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::core;

gan::CycleGanConfig tiny_config() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

// ---- pairing -------------------------------------------------------------------

TEST(Pairing, CoversAllTrainersWhenEven) {
  const auto pairs = tournament_pairs(8, 1, 0);
  EXPECT_EQ(pairs.size(), 4u);
  std::set<int> seen;
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(a, b);
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pairing, OddTrainerSitsOut) {
  const auto pairs = tournament_pairs(5, 1, 0);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(Pairing, DeterministicPerRound) {
  EXPECT_EQ(tournament_pairs(6, 2, 3), tournament_pairs(6, 2, 3));
}

TEST(Pairing, VariesAcrossRounds) {
  // Over several rounds the pairings must not be constant.
  bool differs = false;
  const auto first = tournament_pairs(8, 2, 0);
  for (std::size_t round = 1; round < 5; ++round) {
    if (tournament_pairs(8, 2, round) != first) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Pairing, SingleTrainerHasNoPairs) {
  EXPECT_TRUE(tournament_pairs(1, 1, 0).empty());
}

// ---- population builder ----------------------------------------------------------

TEST(Population, BuildsDisjointPartitions) {
  const data::Dataset dataset = tiny_dataset(300, 20);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 21);
  PopulationConfig config;
  config.num_trainers = 3;
  config.batch_size = 16;
  config.model = tiny_config();
  config.seed = 22;
  const auto trainers = build_population(dataset, splits, config);
  ASSERT_EQ(trainers.size(), 3u);
  // Models differ (independent seeds); partition sizes are balanced.
  EXPECT_NE(trainers[0]->model().generator_weights(),
            trainers[1]->model().generator_weights());
  for (const auto& trainer : trainers) {
    EXPECT_GE(trainer->partition_size(), 64u);
    EXPECT_FALSE(trainer->tournament_view().empty());
  }
}

// ---- GanTrainer -----------------------------------------------------------------

TEST(GanTrainer, ScoreCandidateRestoresOwnModel) {
  const data::Dataset dataset = tiny_dataset(200, 23);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 24);
  PopulationConfig config;
  config.num_trainers = 2;
  config.batch_size = 16;
  config.model = tiny_config();
  config.seed = 25;
  auto trainers = build_population(dataset, splits, config);

  const std::vector<float> own = trainers[0]->model().generator_weights();
  const std::vector<float> other = trainers[1]->model().generator_weights();
  const double candidate_score =
      trainers[0]->score_candidate_generator(other);
  EXPECT_TRUE(std::isfinite(candidate_score));
  EXPECT_EQ(trainers[0]->model().generator_weights(), own);
}

TEST(GanTrainer, TrainStepsAdvanceCounter) {
  const data::Dataset dataset = tiny_dataset(100, 26);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 27);
  PopulationConfig config;
  config.num_trainers = 1;
  config.batch_size = 8;
  config.model = tiny_config();
  auto trainers = build_population(dataset, splits, config);
  trainers[0]->train_steps(5);
  EXPECT_EQ(trainers[0]->steps_taken(), 5u);
}

// ---- LocalLtfbDriver ----------------------------------------------------------------

struct DriverFixture {
  data::Dataset dataset = tiny_dataset(400, 30);
  data::SplitIndices splits =
      data::split_dataset(dataset.size(), 0.7, 0.15, 31);

  LocalLtfbDriver make_driver(std::size_t trainers, LtfbConfig ltfb) {
    PopulationConfig config;
    config.num_trainers = trainers;
    config.batch_size = 16;
    config.model = tiny_config();
    config.seed = 32;
    return LocalLtfbDriver(build_population(dataset, splits, config), ltfb);
  }
};

TEST(LocalDriver, RoundRecordsPairings) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 3;
  ltfb.rounds = 2;
  ltfb.pretrain_steps = 2;
  LocalLtfbDriver driver = fx.make_driver(4, ltfb);
  driver.pretrain();
  const RoundRecord& record = driver.run_round();
  EXPECT_EQ(record.round, 0u);
  ASSERT_EQ(record.stats.size(), 4u);
  int paired = 0;
  for (const auto& stat : record.stats) {
    if (stat.partner_id >= 0) {
      ++paired;
      EXPECT_TRUE(std::isfinite(stat.own_score));
      EXPECT_TRUE(std::isfinite(stat.partner_score));
      // Adoption must be consistent with the scores.
      EXPECT_EQ(stat.adopted_partner,
                stat.partner_score < stat.own_score);
    }
  }
  EXPECT_EQ(paired, 4);
}

TEST(LocalDriver, RoundRecordsCarryTimingColumns) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 3;
  ltfb.rounds = 1;
  LtfbConfig config = ltfb;
  LocalLtfbDriver driver = fx.make_driver(2, config);
  const RoundRecord& record = driver.run_round();
  // Wall clock covers train + tournament, so it is strictly positive and
  // at least the straggler gap (gap = slowest - fastest train time, both
  // inside the same round).
  EXPECT_GT(record.wall_s, 0.0);
  EXPECT_GE(record.max_rank_gap_s, 0.0);
  EXPECT_LE(record.max_rank_gap_s, record.wall_s);

  const std::string path =
      (std::filesystem::temp_directory_path() / "ltfb_core_timing.csv")
          .string();
  ASSERT_TRUE(export_history_csv(driver.history(), path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("round_wall_s"), std::string::npos);
  EXPECT_NE(header.find("max_rank_gap_s"), std::string::npos);
  std::string row;
  std::getline(in, row);
  // The timing columns repeat per stat row of the round — both present.
  EXPECT_EQ(std::count(row.begin(), row.end(), ','), 9);
}

TEST(LocalDriver, AdoptionCopiesBetterGenerator) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 1;
  LocalLtfbDriver driver = fx.make_driver(2, ltfb);
  const RoundRecord& record = driver.run_round();
  const auto& s0 = record.stats[0];
  const auto& s1 = record.stats[1];
  const auto w0 = driver.trainer(0).model().generator_weights();
  const auto w1 = driver.trainer(1).model().generator_weights();
  if (s0.adopted_partner != s1.adopted_partner) {
    // Exactly one side adopted: both now hold the same generator.
    EXPECT_EQ(w0, w1);
  } else if (!s0.adopted_partner) {
    // Both kept their own: generators stay distinct.
    EXPECT_NE(w0, w1);
  }
  // Both adopting (a swap) is legitimate: each local tournament set can
  // prefer the other's model; no equality constraint then.
}

TEST(LocalDriver, FullModelExchangeMovesDiscriminator) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 1;
  ltfb.scope = ExchangeScope::FullModel;
  LocalLtfbDriver driver = fx.make_driver(2, ltfb);
  driver.run_round();
  const auto& record = driver.history().back();
  if (record.stats[0].adopted_partner != record.stats[1].adopted_partner) {
    EXPECT_EQ(driver.trainer(0).model().discriminator_weights(),
              driver.trainer(1).model().discriminator_weights());
  }
}

TEST(LocalDriver, GeneratorOnlyExchangeKeepsDiscriminatorsDistinct) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 3;
  LocalLtfbDriver driver = fx.make_driver(2, ltfb);
  driver.run();
  // Discriminators were seeded differently and never exchanged.
  EXPECT_NE(driver.trainer(0).model().discriminator_weights(),
            driver.trainer(1).model().discriminator_weights());
}

TEST(LocalDriver, HistoryAccumulates) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 3;
  LocalLtfbDriver driver = fx.make_driver(3, ltfb);
  driver.run();
  EXPECT_EQ(driver.history().size(), 3u);
  EXPECT_EQ(driver.history()[2].round, 2u);
}

TEST(LocalDriver, BestTrainerIndexValid) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 1;
  LocalLtfbDriver driver = fx.make_driver(3, ltfb);
  driver.run();
  const std::size_t best = driver.best_trainer(fx.splits.validation, 16);
  EXPECT_LT(best, 3u);
}

TEST(LocalDriver, EmptyPopulationThrows) {
  EXPECT_THROW(LocalLtfbDriver({}, LtfbConfig{}), InvalidArgument);
}

// ---- K-independent baseline -----------------------------------------------------------

TEST(KIndependent, RunsWithoutExchange) {
  DriverFixture fx;
  LtfbConfig ltfb;
  ltfb.steps_per_round = 2;
  ltfb.rounds = 2;
  PopulationConfig config;
  config.num_trainers = 2;
  config.batch_size = 16;
  config.model = tiny_config();
  config.seed = 40;
  KIndependentDriver driver(build_population(fx.dataset, fx.splits, config),
                            ltfb);
  driver.run();
  EXPECT_EQ(driver.trainer(0).steps_taken(), 4u);
  // No exchange ever happens: generators stay distinct.
  EXPECT_NE(driver.trainer(0).model().generator_weights(),
            driver.trainer(1).model().generator_weights());
  const std::size_t best = driver.best_trainer(fx.splits.validation, 16);
  EXPECT_LT(best, 2u);
}

// ---- the headline algorithmic property -------------------------------------------------

TEST(LtfbVsKIndependent, LtfbAtLeastAsGoodAtEqualBudget) {
  // Small-scale version of the paper's Sec. IV-E claim: with the same
  // per-trainer step budget and the same partitions, LTFB's best model
  // generalizes at least as well as the best of K independent trainers
  // (allowing a small tolerance at this tiny scale).
  const data::Dataset dataset = tiny_dataset(600, 50);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 51);

  PopulationConfig config;
  config.num_trainers = 4;
  config.batch_size = 16;
  config.model = tiny_config();
  config.seed = 52;

  LtfbConfig ltfb;
  ltfb.steps_per_round = 15;
  ltfb.rounds = 6;
  ltfb.pretrain_steps = 20;

  LocalLtfbDriver ltfb_driver(build_population(dataset, splits, config),
                              ltfb);
  ltfb_driver.run();
  const std::size_t ltfb_best =
      ltfb_driver.best_trainer(splits.validation, 16);
  const double ltfb_loss =
      evaluate_gan(ltfb_driver.trainer(ltfb_best).model(), dataset,
                   splits.validation, 16)
          .total();

  KIndependentDriver kind_driver(build_population(dataset, splits, config),
                                 ltfb);
  kind_driver.run();
  const std::size_t kind_best =
      kind_driver.best_trainer(splits.validation, 16);
  const double kind_loss =
      evaluate_gan(kind_driver.trainer(kind_best).model(), dataset,
                   splits.validation, 16)
          .total();

  EXPECT_LT(ltfb_loss, kind_loss * 1.10);
}

}  // namespace
