// Unit tests for src/util: RNG determinism and quality, statistics,
// formatting, tables, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ltfb;
using namespace ltfb::util;

// ---- rng --------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.engine()() == b.engine()()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeriveSeedIsDeterministic) {
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
  EXPECT_NE(derive_seed(7, 3), derive_seed(7, 4));
  EXPECT_NE(derive_seed(7, 3), derive_seed(8, 3));
}

TEST(Rng, DeriveSeedLabelOverloads) {
  EXPECT_EQ(derive_seed(1, "model"), derive_seed(1, "model"));
  EXPECT_NE(derive_seed(1, "model"), derive_seed(1, "reader"));
  EXPECT_EQ(derive_seed(1, "model", 2), derive_seed(1, "model", 2));
  EXPECT_NE(derive_seed(1, "model", 2), derive_seed(1, "model", 3));
}

TEST(Rng, AdjacentSeedsAreUnrelated) {
  // SplitMix expansion: streams from seeds s and s+1 must not correlate.
  Rng a(100), b(101);
  double dot = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    dot += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_LT(std::abs(dot / n), 0.01);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 12345ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    seen.insert(rng.uniform_index(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(rng.normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a{1, 2, 3, 4, 5}, b{1, 2, 3, 4, 5};
  Rng r1(12), r2(12);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng parent(13);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  EXPECT_NE(c1.engine()(), c2.engine()());
}

TEST(Rng, LongJumpChangesState) {
  Xoshiro256 a(55), b(55);
  b.long_jump();
  EXPECT_NE(a(), b());
}

// ---- stats ------------------------------------------------------------------

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  Rng rng(14);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<float> a{1, 2, 3, 4, 5};
  const std::vector<float> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(std::span<const float>(a), std::span<const float>(b)),
              1.0, 1e-9);
}

TEST(Stats, PearsonAntiCorrelation) {
  const std::vector<float> a{1, 2, 3};
  const std::vector<float> b{3, 2, 1};
  EXPECT_NEAR(pearson(std::span<const float>(a), std::span<const float>(b)),
              -1.0, 1e-9);
}

TEST(Stats, PearsonConstantInputIsZero) {
  const std::vector<float> a{1, 1, 1};
  const std::vector<float> b{1, 2, 3};
  EXPECT_EQ(pearson(std::span<const float>(a), std::span<const float>(b)),
            0.0);
}

TEST(Stats, MaeAndRmse) {
  const std::vector<float> a{0, 0, 0, 0};
  const std::vector<float> b{1, -1, 2, -2};
  EXPECT_DOUBLE_EQ(
      mean_absolute_error(std::span<const float>(a), std::span<const float>(b)),
      1.5);
  EXPECT_NEAR(rmse(std::span<const float>(a), std::span<const float>(b)),
              std::sqrt(2.5), 1e-6);
}

TEST(Stats, PsnrIdenticalIsLarge) {
  const std::vector<float> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(psnr(std::span<const float>(a), std::span<const float>(a),
                        1.0),
                   99.0);
}

TEST(Stats, PsnrKnownValue) {
  const std::vector<float> a{0, 0};
  const std::vector<float> b{1, 1};  // rmse = 1, peak = 10 -> 20 dB
  EXPECT_NEAR(psnr(std::span<const float>(a), std::span<const float>(b), 10.0),
              20.0, 1e-9);
}

TEST(Stats, Percentile) {
  std::vector<double> data{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25), 2.0);
}

TEST(Stats, PercentileEmptyThrows) {
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
}

// ---- error ------------------------------------------------------------------

TEST(Error, CheckThrowsWithMessage) {
  try {
    LTFB_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesQuietly) {
  EXPECT_NO_THROW(LTFB_CHECK(1 + 1 == 2));
}

// ---- table / formatting -------------------------------------------------------

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Table, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.0005), "500.0 us");
  EXPECT_EQ(format_seconds(0.25), "250.0 ms");
  EXPECT_EQ(format_seconds(12.0), "12.0 s");
  EXPECT_EQ(format_seconds(1200.0), "20.0 min");
  EXPECT_EQ(format_seconds(7200.0 + 1800.0), "2.50 h");
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Table, RenderAlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "12345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, CsvWriterWritesRows) {
  const std::string path = testing::TempDir() + "/ltfb_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    ASSERT_TRUE(csv.ok());
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

// ---- thread pool ---------------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedWork) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++counter;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroRequestedStillHasOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    pool.submit([gate] { gate.wait(); });
    // These queue up behind the blocked worker; the destructor must run
    // them all before joining — accepted work is never dropped.
    for (int i = 0; i < 20; ++i) {
      pool.submit([&executed] { ++executed; });
    }
    release.set_value();
  }
  EXPECT_EQ(executed.load(), 20);
}

TEST(ThreadPool, SubmitDuringShutdownThrowsInsteadOfDeadlocking) {
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* p = pool.get();
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  p->submit([gate] { gate.wait(); });
  // The destructor flags shutdown under the pool mutex almost immediately,
  // then parks in join() on the gate-blocked worker — so the pool object
  // stays alive while we probe submit() from this thread.
  std::thread destroyer([&pool] { pool.reset(); });
  bool threw = false;
  for (int i = 0; i < 200000 && !threw; ++i) {
    if (i % 64 == 0) std::this_thread::yield();
    try {
      p->submit([] {});
    } catch (const Error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  release.set_value();
  destroyer.join();
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_seconds(), 0.005);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.5);
}

TEST(Stopwatch, ShimAliasesTelemetryStopwatch) {
  // util/stopwatch.hpp is a compatibility shim over the telemetry clock.
  static_assert(
      std::is_same_v<util::Stopwatch, ltfb::telemetry::Stopwatch>);
}

// ---- logger sinks -----------------------------------------------------------

TEST(Logger, DefaultSinkIsInstalled) {
  auto& logger = Logger::instance();
  EXPECT_GE(logger.sink_count(), 1u);
}

TEST(Logger, SinksReceiveStructuredRecords) {
  auto& logger = Logger::instance();
  const auto saved_level = logger.level();
  logger.set_level(LogLevel::Info);
  std::vector<std::pair<std::string, std::string>> seen;
  const int id = logger.add_sink([&seen](const LogRecord& record) {
    seen.emplace_back(std::string(record.component),
                      std::string(record.message));
  });
  LTFB_LOG_INFO("testsink", "hello " << 42);
  LTFB_LOG_DEBUG("testsink", "suppressed");  // below Info: never dispatched
  logger.remove_sink(id);
  LTFB_LOG_INFO("testsink", "after removal");
  logger.set_level(saved_level);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, "testsink");
  EXPECT_EQ(seen[0].second, "hello 42");
}

TEST(Logger, RemoveSinkIgnoresUnknownIds) {
  auto& logger = Logger::instance();
  const std::size_t before = logger.sink_count();
  logger.remove_sink(123456);
  EXPECT_EQ(logger.sink_count(), before);
}

TEST(Logger, SinksStackAndRemoveIndependently) {
  auto& logger = Logger::instance();
  const auto saved_level = logger.level();
  logger.set_level(LogLevel::Warn);
  int first_hits = 0, second_hits = 0;
  const int first = logger.add_sink([&first_hits](const LogRecord&) {
    ++first_hits;
  });
  const int second = logger.add_sink([&second_hits](const LogRecord&) {
    ++second_hits;
  });
  LTFB_LOG_WARN("testsink", "both");
  logger.remove_sink(first);
  LTFB_LOG_WARN("testsink", "second only");
  logger.remove_sink(second);
  logger.set_level(saved_level);
  EXPECT_EQ(first_hits, 1);
  EXPECT_EQ(second_hits, 2);
}

// Regression: level_ used to be a plain enum guarded by nothing — enabled()
// read it while set_level() wrote it, a data race. It is atomic now; readers
// must only ever observe a value some thread actually stored (run under
// LTFB_SANITIZE=thread in CI to make the old race fatal).
TEST(Logger, LevelChangesAreThreadSafe) {
  auto& logger = Logger::instance();
  const auto saved_level = logger.level();
  logger.set_level(LogLevel::Debug);
  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const LogLevel seen = logger.level();
        if (seen != LogLevel::Debug && seen != LogLevel::Error) {
          torn_reads.fetch_add(1);
        }
        (void)logger.enabled(LogLevel::Warn);
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    logger.set_level(i % 2 == 0 ? LogLevel::Error : LogLevel::Debug);
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(torn_reads.load(), 0);
  logger.set_level(saved_level);
}

}  // namespace
