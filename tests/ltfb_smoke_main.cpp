// Distributed-LTFB observability smoke: a tiny multi-trainer run with
// telemetry forced on, leaving behind the full distributed-observability
// artifact set (DESIGN.md §11):
//
//   * a Chrome trace with one pid per rank and cross-rank flow arrows,
//   * the in-band metrics_timeseries.jsonl (one cluster aggregate per
//     round, appended by the root leader),
//   * a metrics JSON snapshot.
//
// tools/ltfb_trace.py --validate consumes these as a ctest (and in the CI
// observability job). Not a gtest binary on purpose: it is also the
// documented "reading a distributed trace" quickstart command.
//
// --spawn switches to World::spawn_processes (one OS process per rank over
// the socket mesh) and leaves the flight-recorder postmortem artifact set
// behind instead: per-rank postmortem_rank<N>.json for every rank that
// unwound plus the supervisor's merged postmortem_run.json, consumed by
// tools/ltfb_postmortem.py --validate. Injected faults (kill:/delay: via
// LTFB_FAULT_SCHEDULE) are the expected subject of the postmortems, so the
// parent exits 0 as long as every child died inside the exit-code taxonomy.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "comm/communicator.hpp"
#include "core/ltfb_comm.hpp"
#include "core/scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace {

using namespace ltfb;

gan::CycleGanConfig tiny_model() {
  gan::CycleGanConfig config;
  config.image_width = 48;
  config.latent_width = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.forward_hidden = {12};
  config.inverse_hidden = {8};
  config.discriminator_hidden = {8};
  config.learning_rate = 2e-3f;
  return config;
}

data::Dataset tiny_dataset(std::size_t n, std::uint64_t seed) {
  jag::JagConfig jag_config;
  jag_config.image_size = 4;
  jag_config.num_views = 3;
  jag_config.num_channels = 1;
  const jag::JagModel model(jag_config);
  data::Dataset dataset = data::generate_jag_dataset(model, n, seed);
  const auto norms = data::fit_normalizers(dataset);
  data::normalize_dataset(dataset, norms);
  return dataset;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path = "ltfb_smoke_trace.json";
  std::string timeseries_path = "ltfb_smoke_timeseries.jsonl";
  std::string metrics_path = "ltfb_smoke_metrics.json";
  int ranks = 4;
  int ranks_per_trainer = 2;
  std::size_t rounds = 3;
  bool elastic = false;
  bool spawn = false;
  int comm_timeout_ms = 0;
  int trainers = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--timeseries") {
      timeseries_path = value();
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--ranks") {
      ranks = std::stoi(value());
    } else if (arg == "--ranks-per-trainer") {
      ranks_per_trainer = std::stoi(value());
    } else if (arg == "--rounds") {
      rounds = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--elastic") {
      // Elastic mode: one trainer per rank under the ElasticScheduler
      // (DESIGN.md §14); churn comes from LTFB_FAULT_SCHEDULE's
      // join/leave/migrate verbs.
      elastic = true;
    } else if (arg == "--trainers") {
      trainers = std::stoi(value());
    } else if (arg == "--spawn") {
      spawn = true;
    } else if (arg == "--comm-timeout-ms") {
      comm_timeout_ms = std::stoi(value());
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--trace F] [--timeseries F] [--metrics F] [--ranks N]"
                   " [--ranks-per-trainer N] [--rounds N] [--elastic]"
                   " [--trainers N] [--spawn] [--comm-timeout-ms MS]\n";
      return 2;
    }
  }

  if (spawn) {
    // Multi-process mode: each child runs the distributed LTFB body; the
    // parent only supervises. Telemetry file exports happen per child (via
    // LTFB_TELEMETRY_OUT if set); the parent's registry never sees rank
    // events, so the trace/metrics writes below are skipped.
    const data::Dataset spawn_dataset = tiny_dataset(400, 61);
    const auto spawn_splits =
        data::split_dataset(spawn_dataset.size(), 0.7, 0.15, 62);
    core::DistributedLtfbConfig config;
    config.ranks_per_trainer = ranks_per_trainer;
    config.batch_size = 16;
    config.ltfb.steps_per_round = 4;
    config.ltfb.rounds = rounds;
    config.ltfb.pretrain_steps = 4;
    config.model = tiny_model();
    config.seed = 60;
    config.comm_timeout = std::chrono::milliseconds(comm_timeout_ms);
    const auto statuses = comm::World::spawn_processes(
        ranks, [&](comm::Communicator& world) {
          const auto outcome = core::run_distributed_ltfb(
              world, spawn_dataset, spawn_splits, config);
          LTFB_CHECK_MSG(!outcome.aborted, "smoke run aborted on rank");
        });
    bool in_taxonomy = true;
    for (const auto& status : statuses) {
      std::cerr << "rank " << status.rank << ": exit code " << status.code
                << (status.pre_rendezvous ? " (pre-rendezvous)" : "") << "\n";
      const bool known = status.code == comm::World::kExitClean ||
                         status.code == comm::World::kExitError ||
                         status.code == comm::World::kExitFaultInjected ||
                         status.code == comm::World::kExitRankFailed ||
                         status.code == comm::World::kExitTimeout;
      in_taxonomy = in_taxonomy && known;
    }
    return in_taxonomy ? 0 : 1;
  }

  auto& registry = telemetry::Registry::instance();
  registry.set_enabled(true);
  registry.reset_metrics();
  registry.clear_trace();

  // The aggregator appends; start each smoke from an empty timeseries.
  std::error_code ec;
  std::filesystem::remove(timeseries_path, ec);

  const data::Dataset dataset = tiny_dataset(400, 61);
  const auto splits = data::split_dataset(dataset.size(), 0.7, 0.15, 62);

  if (elastic) {
    core::ElasticLtfbConfig config;
    config.batch_size = 16;
    config.ltfb.steps_per_round = 4;
    config.ltfb.rounds = rounds;
    config.ltfb.pretrain_steps = 4;
    config.model = tiny_model();
    config.seed = 60;
    config.initial_trainers = trainers > 0 ? trainers : ranks;
    config.max_trainers = ranks;
    config.metrics_timeseries_path = timeseries_path;
    comm::World::run(ranks, [&](comm::Communicator& world) {
      const auto outcome =
          core::run_elastic_ltfb(world, dataset, splits, config);
      LTFB_CHECK_MSG(!outcome.aborted, "elastic smoke run aborted on rank");
    });
  } else {
    core::DistributedLtfbConfig config;
    config.ranks_per_trainer = ranks_per_trainer;
    config.batch_size = 16;
    config.ltfb.steps_per_round = 4;
    config.ltfb.rounds = rounds;
    config.ltfb.pretrain_steps = 4;
    config.model = tiny_model();
    config.seed = 60;
    config.metrics_timeseries_path = timeseries_path;
    comm::World::run(ranks, [&](comm::Communicator& world) {
      const auto outcome =
          core::run_distributed_ltfb(world, dataset, splits, config);
      LTFB_CHECK_MSG(!outcome.aborted, "smoke run aborted on rank");
    });
  }

  if (!registry.write_trace_json(trace_path)) {
    std::cerr << "failed to write trace to " << trace_path << "\n";
    return 1;
  }
  if (!registry.write_metrics_json(metrics_path)) {
    std::cerr << "failed to write metrics to " << metrics_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << trace_path << ", " << timeseries_path << ", "
            << metrics_path << "\n";
  return 0;
}
